package analyze

import (
	"strings"
	"testing"
)

// fixtureDetRandConfig mirrors DefaultDetRandConfig onto the fixture
// module: detcore is engine core, fakerng is the stream wrapper.
func fixtureDetRandConfig() DetRandConfig {
	return DetRandConfig{
		Core:      []string{"lintfix/detcore", "lintfix/fakerng"},
		RNGImport: "lintfix/fakerng",
	}
}

func TestDetRand(t *testing.T) {
	pkgs := loadFixture(t, "./fakerng", "./detcore", "./detconsumer", "./detfree")
	checkDiagnostics(t, pkgs, NewDetRand(fixtureDetRandConfig()))
}

func TestMapOrder(t *testing.T) {
	pkgs := loadFixture(t, "./mapiter")
	checkDiagnostics(t, pkgs, NewMapOrder(MapOrderConfig{Packages: []string{"lintfix/mapiter"}}))
}

func TestJournalChoke(t *testing.T) {
	pkgs := loadFixture(t, "./engine", "./world")
	checkDiagnostics(t, pkgs, NewJournalChoke(JournalChokeConfig{
		PkgPath: "lintfix/world", TypeName: "World", Choke: "apply",
	}))
}

// TestJournalChokeMissingChokepoint pins the config-drift failure mode:
// renaming the chokepoint without updating the lint config must be a
// loud diagnostic, not a silently-passing check.
func TestJournalChokeMissingChokepoint(t *testing.T) {
	pkgs := loadFixture(t, "./engine", "./world")
	diags, err := Run(pkgs, []*Analyzer{NewJournalChoke(JournalChokeConfig{
		PkgPath: "lintfix/world", TypeName: "World", Choke: "applyOp",
	})})
	if err != nil {
		t.Fatalf("running journalchoke: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic for a missing chokepoint, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "journal chokepoint (*World).applyOp not found") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
}

func TestObsPure(t *testing.T) {
	pkgs := loadFixture(t, "./obsiface", "./obscore", "./obsprobes")
	checkDiagnostics(t, pkgs, NewObsPure(ObsPureConfig{
		ObsPkg: "lintfix/obsiface", Iface: "Probe", Core: []string{"lintfix/obscore"},
	}))
}

func TestHotPath(t *testing.T) {
	pkgs := loadFixture(t, "./hot")
	checkDiagnostics(t, pkgs, NewHotPath())
}

// TestMalformedAnnotations drives the shared annotation scanner over a
// package of deliberate mistakes. Every malformation must surface as a
// diagnostic — a selfstab annotation that does not parse is an
// invariant that silently stopped being enforced — and the one
// well-formed annotation in the package must not.
func TestMalformedAnnotations(t *testing.T) {
	pkgs := loadFixture(t, "./badann")
	diags, err := Run(pkgs, []*Analyzer{NewHotPath()})
	if err != nil {
		t.Fatalf("running hotpath over badann: %v", err)
	}
	wants := []string{
		"no space allowed between // and selfstab:",
		"missing verb",
		`unknown verb "frobnicate"`,
		"use a line comment",
		"misplaced //selfstab:cache",
		"requires a reason",
		"misplaced //selfstab:hotpath",
		"misplaced //selfstab:orderinvariant",
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("want %d diagnostics, got %d", len(wants), len(diags))
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q", w)
		}
	}
}

// TestSuiteOnRepo is the acceptance gate in test form: the shipped
// suite, with its production configs, runs clean over the repository
// itself. This is the same sweep CI performs via cmd/selfstab-lint.
func TestSuiteOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags, err := Run(pkgs, Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", pkgs[0].Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}
