// Package analyze is the repo's static-analysis suite: five analyzers
// (detrand, maporder, journalchoke, hotpath, obspure) that turn the
// engine's standing invariants into machine-checked contracts, plus the
// small framework they run on.
//
// Why these rules exist:
//
//   - Determinism is the product. Every oracle in this repo — the
//     1-vs-N-worker twins, the flat-vs-tiled twins, snapshot replay —
//     asserts bit-identical trajectories. A single draw from the global
//     math/rand source, one wall-clock read, or one `for range` over a
//     map inside a step phase silently breaks all of them, and the
//     dynamic tests only catch it when a random schedule happens to
//     expose it. detrand and maporder reject those constructs at
//     compile-review time in the deterministic packages (the engine
//     core plus any package that consumes internal/rng streams).
//   - The journal must be complete by construction. Snapshot replay
//     (journal.go) is only faithful because every public world mutator
//     routes through the applyOp chokepoint. journalchoke walks the
//     call graph of every exported Network method and fails the build
//     if a method can reach a mutating engine entry point — or write
//     Network state — without passing through applyOp.
//   - Observation must not perturb the trajectory. The instrumentation
//     layer (internal/obs) promises that tracing on vs off is
//     bit-identical; that holds only if probe callbacks never feed back
//     into the engine and the step path never reads observation state.
//     obspure checks both directions statically, so a probe that steers
//     the world is a lint failure before it is a flaky oracle.
//   - The hot paths are allocation-budgeted. The step benchmarks pin
//     0–2 allocs/op; hotpath statically rejects the incidental
//     allocation sites (fmt calls, map/slice composite literals,
//     closures, concrete-to-interface conversions) inside functions
//     annotated //selfstab:hotpath, so the benchmark gate and the
//     analyzer guard the same code from two sides.
//
// The framework deliberately mirrors a narrow slice of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic, package
// facts) so the analyzers can migrate to the real multichecker
// verbatim once the dependency is available; this environment builds
// with the standard library only, so loading is done with
// `go list -export` plus the gc importer instead of go/packages.
//
// Annotation escape hatches (see annotation.go for the grammar):
//
//	//selfstab:hotpath           function must stay free of obvious allocation sites
//	//selfstab:orderinvariant    this map range is order-independent (say why)
//	//selfstab:mutator           exported fact: this method mutates world trajectory
//	//selfstab:unjournaled       exported method deliberately outside the op journal (say why)
//	//selfstab:cache             this field is derived state, rebuilt deterministically
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer closely enough that porting
// to the real package is mechanical.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -<name>=false
	// disable flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one package's syntax and type information to an
// analyzer, and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
	facts *FactStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ExportPackageFact records a named fact about the package under
// analysis, visible to later passes of the same analyzer over packages
// that (transitively) import it.
func (p *Pass) ExportPackageFact(key string, value any) {
	p.facts.set(p.Analyzer.Name, p.Pkg.Path(), key, value)
}

// ImportPackageFact retrieves a fact exported by this analyzer for the
// given package path, or nil if none was recorded.
func (p *Pass) ImportPackageFact(pkgPath, key string) any {
	return p.facts.get(p.Analyzer.Name, pkgPath, key)
}

// FactStore holds per-analyzer, per-package facts across a multi-package
// run. Keys are (analyzer, package path, fact name).
type FactStore struct {
	m map[string]any
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[string]any)} }

func (s *FactStore) set(analyzer, pkg, key string, v any) {
	s.m[analyzer+"\x00"+pkg+"\x00"+key] = v
}

func (s *FactStore) get(analyzer, pkg, key string) any {
	return s.m[analyzer+"\x00"+pkg+"\x00"+key]
}

// Run executes the analyzers over the packages, in the order given
// (callers load packages in dependency order so facts flow from
// imported to importing packages), and returns every diagnostic sorted
// by position. Diagnostics with identical position and message are
// deduplicated: the annotation scanner reports malformed annotations
// from every analyzer that consults it, and one complaint is enough.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFactStore()
	var all []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				facts:    facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			all = append(all, pass.diags...)
		}
	}
	return dedupeSorted(pkgs, all), nil
}

func dedupeSorted(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if fset != nil {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			if pi.Column != pj.Column {
				return pi.Column < pj.Column
			}
		}
		return diags[i].Message < diags[j].Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && diags[i-1].Pos == d.Pos && diags[i-1].Message == d.Message {
			continue
		}
		out = append(out, d)
	}
	return out
}
