// Package hot exercises the hotpath analyzer: one of each rejected
// allocation site, and the sanctioned patterns that must stay legal.
package hot

import "fmt"

// Stringer is a local interface to box into.
type Stringer interface{ String() string }

// ID is a concrete type with a String method.
type ID int

// String implements Stringer.
func (i ID) String() string { return "id" }

// Sink receives boxed values.
func Sink(v Stringer) {}

// state is reusable scratch.
type state struct {
	buf  []int
	seen map[int]bool
}

type point struct{ x, y int }

// Flagged contains one of each rejected allocation site.
//
//selfstab:hotpath
func Flagged(s *state, i ID) {
	fmt.Println("step", i)  // want `call to fmt\.Println allocates`
	s.buf = []int{1, 2, 3}  // want `slice literal allocates`
	s.seen = map[int]bool{} // want `map literal allocates`
	f := func() int {       // want `closure literal allocates`
		return 1
	}
	_ = f
	Sink(i) // want `converted to interface`
	var v Stringer
	v = i // want `converted to interface`
	_ = v
	_ = Stringer(i) // want `converted to interface`
}

// Allowed shows the sanctioned patterns: state-gated make, struct
// literals, and a call to an unannotated cold helper.
//
//selfstab:hotpath
func Allowed(s *state, n int) {
	if cap(s.buf) < n {
		s.buf = make([]int, n) // deliberate amortized growth
	}
	p := point{x: 1, y: 2}
	s.buf[0] = p.x + p.y
	if n < 0 {
		coldFail(n)
	}
}

// coldFail is the unannotated cold helper: formatting here is the
// sanctioned escape, visible at the call site in review.
func coldFail(n int) {
	fmt.Printf("bad n: %d\n", n)
}
