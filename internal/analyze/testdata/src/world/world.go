// Package world is the journalchoke fixture's journaled world type:
// every exported mutator of World must route through the apply
// chokepoint, or carry an //selfstab:unjournaled justification.
package world

import "lintfix/engine"

// Op is a journaled operation.
type Op struct {
	Kind string
	Arg  int
}

// World is the journaled type under test.
type World struct {
	eng   *engine.Engine
	log   []Op
	gen   int
	table []int //selfstab:cache
}

// apply is the chokepoint: mutate, then journal.
func (w *World) apply(op Op) error {
	w.dispatch(op)
	w.log = append(w.log, op)
	return nil
}

func (w *World) dispatch(op Op) {
	switch op.Kind {
	case "step":
		w.eng.Step()
	case "poke":
		w.eng.Poke(op.Arg)
	case "inflate":
		w.eng.ScaleDensity(op.Arg, 4)
	case "evict":
		w.eng.Evict(op.Arg)
	}
}

// Good routes through the chokepoint.
func (w *World) Good() error { return w.apply(Op{Kind: "step"}) }

// BadCall reaches a mutator fact around the chokepoint.
func (w *World) BadCall() { // want `exported method \(\*World\)\.BadCall mutates world state`
	w.eng.Step()
}

// BadStore writes world state directly.
func (w *World) BadStore(g int) { // want `exported method \(\*World\)\.BadStore mutates world state`
	w.gen = g
}

// BadDeep reaches a mutation through an unexported helper.
func (w *World) BadDeep() { // want `exported method \(\*World\)\.BadDeep mutates world state`
	w.helper()
}

func (w *World) helper() { w.eng.Poke(0) }

// CacheFill writes only the cache-annotated field: allowed.
func (w *World) CacheFill() {
	w.table = append(w.table, w.gen)
}

// Tune is deliberately outside the journal.
//
//selfstab:unjournaled fixture perf knob; results are identical either way
func (w *World) Tune(g int) { w.gen = g }

// Vetted reaches a mutation only through an unjournaled-vetted helper:
// allowed, because the helper's subtree is exempt like the chokepoint's.
func (w *World) Vetted() { w.vettedHelper() }

// vettedHelper is vetted as deliberately outside the journal.
//
//selfstab:unjournaled fixture schedule helper; replay reproduces it deterministically
func (w *World) vettedHelper() { w.eng.Step() }

// Inflate is an attack op routed through the chokepoint: journaled like
// any other mutation, so an attacked world replays bit-identically.
func (w *World) Inflate(i int) error { return w.apply(Op{Kind: "inflate", Arg: i}) }

// BadInflate mounts the attack around the journal: the replayed world
// would never see it.
func (w *World) BadInflate(i int) { // want `exported method \(\*World\)\.BadInflate mutates world state`
	w.eng.ScaleDensity(i, 4)
}

// BadEvict applies the defense response around the journal.
func (w *World) BadEvict(i int) { // want `exported method \(\*World\)\.BadEvict mutates world state`
	w.eng.Evict(i)
}

// Detect is a read-only defense sweep: detection may stay outside the
// journal, only the response must go through it.
func (w *World) Detect() bool { return w.eng.Implausible(2) }

// Reader never mutates.
func (w *World) Reader() int { return w.eng.StepCount() }
