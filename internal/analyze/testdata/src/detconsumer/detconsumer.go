// Package detconsumer consumes seeded streams without being engine
// core: only the global-rand rule extends here, and wall-clock or
// environment reads stay legal.
package detconsumer

import (
	"math/rand"
	"time"

	"lintfix/fakerng"
)

// Mixed draws from the wrapper and, wrongly, from the global source.
func Mixed(src *fakerng.Source) float64 {
	v := src.Float64()
	v += rand.Float64() // want `global rand\.Float64 draws from shared process-wide state`
	_ = time.Now()      // wall clock is legal outside the core
	return v
}
