// Package obsiface is the obspure fixture's instrumentation package: a
// miniature probe interface plus one value-returning export that
// step-path code must never call.
package obsiface

// Phase identifies one step phase.
type Phase int

// Probe is the fixture's observation interface.
type Probe interface {
	PhaseBegin(p Phase)
	PhaseEnd(p Phase)
	Counter(v int64)
}

// Emit is a void package-level helper: legal from anywhere.
func Emit(p Phase) {}

// Stats returns accumulated observation state: reading it from the step
// path is the bug obspure rule 2 exists to catch.
func Stats() int { return 0 }
