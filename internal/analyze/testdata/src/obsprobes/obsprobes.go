// Package obsprobes holds the obspure fixture's probe implementations:
// one pure observer and two that feed back into the engine core.
package obsprobes

import (
	"lintfix/obscore"
	"lintfix/obsiface"
)

// GoodProbe observes into its own state only.
type GoodProbe struct {
	begins int
	counts []int64
}

func (g *GoodProbe) PhaseBegin(p obsiface.Phase) { g.begins++ }
func (g *GoodProbe) PhaseEnd(p obsiface.Phase)   {}
func (g *GoodProbe) Counter(v int64)             { g.counts = append(g.counts, v) }

// CallbackProbe calls back into the engine from a callback.
type CallbackProbe struct {
	eng *obscore.Engine
}

func (c *CallbackProbe) PhaseBegin(p obsiface.Phase) {
	c.eng.Advance() // want `probe callback \(CallbackProbe\)\.PhaseBegin calls Advance in engine package lintfix/obscore`
}
func (c *CallbackProbe) PhaseEnd(p obsiface.Phase) {}
func (c *CallbackProbe) Counter(v int64)           {}

// StoreProbe mutates engine package state from a callback.
type StoreProbe struct{}

func (s StoreProbe) PhaseBegin(p obsiface.Phase) {}
func (s StoreProbe) PhaseEnd(p obsiface.Phase) {
	obscore.Ticks++ // want `probe callback \(StoreProbe\)\.PhaseEnd stores to lintfix/obscore\.Ticks`
}
func (s StoreProbe) Counter(v int64) {
	obscore.Ticks = int(v) // want `probe callback \(StoreProbe\)\.Counter stores to lintfix/obscore\.Ticks`
}

// Bystander shares a callback name with the interface but does not
// implement it: not a probe, not checked.
type Bystander struct{}

func (b Bystander) PhaseBegin(p obsiface.Phase) { obscore.Ticks++ }
