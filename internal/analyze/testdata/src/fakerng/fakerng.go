// Package fakerng is the fixture stand-in for the seeded-stream
// wrapper package: math/rand constructors are legal here and nowhere
// else in the deterministic fixture packages.
package fakerng

import "math/rand"

// Source is a deterministic stream derived from a master seed.
type Source struct{ r *rand.Rand }

// New returns the master stream for seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent labeled stream.
func (s *Source) Split(label string) *Source {
	h := int64(0)
	for _, c := range label {
		h = h*31 + int64(c)
	}
	return &Source{r: rand.New(rand.NewSource(h))}
}

// Float64 draws from the stream.
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn draws from the stream.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }
