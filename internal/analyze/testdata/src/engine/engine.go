// Package engine is the journalchoke fixture's mutating subsystem:
// trajectory-changing entry points carry //selfstab:mutator, exported
// by the analyzer as package facts for the world package's check.
package engine

// Engine is a toy stepper.
type Engine struct {
	step  int
	state []int
}

// Step advances the engine.
//
//selfstab:mutator
func (e *Engine) Step() { e.step++ }

// Poke corrupts slot i.
//
//selfstab:mutator
func (e *Engine) Poke(i int) { e.state[i]++ }

// StepCount is a read-only accessor: no fact.
func (e *Engine) StepCount() int { return e.step }
