// Package engine is the journalchoke fixture's mutating subsystem:
// trajectory-changing entry points carry //selfstab:mutator, exported
// by the analyzer as package facts for the world package's check.
package engine

// Engine is a toy stepper.
type Engine struct {
	step  int
	state []int
}

// Step advances the engine.
//
//selfstab:mutator
func (e *Engine) Step() { e.step++ }

// Poke corrupts slot i.
//
//selfstab:mutator
func (e *Engine) Poke(i int) { e.state[i]++ }

// ScaleDensity turns slot i byzantine: its advertised value lies by
// factor f until Evict clears it.
//
//selfstab:mutator
func (e *Engine) ScaleDensity(i, f int) { e.state[i] *= f }

// Evict restarts slot i cold, clearing any lie.
//
//selfstab:mutator
func (e *Engine) Evict(i int) { e.state[i] = 0 }

// StepCount is a read-only accessor: no fact.
func (e *Engine) StepCount() int { return e.step }

// Implausible is a read-only detector: no fact.
func (e *Engine) Implausible(bound int) bool { return e.state[0] > bound }
