// Package detfree neither sits in the deterministic core nor imports
// the stream wrapper: detrand leaves it alone.
package detfree

import "math/rand"

// Roll may use the global source: this package made no determinism
// promise.
func Roll() int { return rand.Intn(6) }
