// Package mapiter exercises the maporder analyzer: flagged ranges,
// the sanctioned key-collection shape, bare ranges, and the
// orderinvariant escape hatch.
package mapiter

import "sort"

// Sum ranges a map with a bound value: flagged.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// Keys collects keys only: allowed, because any use of the slice must
// sort it first and maporder still guards the use sites.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count binds neither key nor value: the body cannot observe the
// iteration order.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// MaxAnnotated is order-independent and says so.
func MaxAnnotated(m map[string]int) int {
	best := 0
	//selfstab:orderinvariant max is commutative
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Values appends values, not keys: flagged despite looking like
// collection, because the emitted order is observable.
func Values(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `map iteration order is nondeterministic`
		vals = append(vals, v)
	}
	return vals
}
