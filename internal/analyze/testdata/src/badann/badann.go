// Package badann holds deliberately malformed or misplaced selfstab
// annotations; the scanner must report every one of them, because an
// annotation that does not parse is an invariant that silently stopped
// being enforced.
package badann

// selfstab:hotpath
func SpacedOut() {}

//selfstab:
func MissingVerb() {}

//selfstab:frobnicate
func UnknownVerb() {}

//selfstab:hotpath
func Fine() {}

/*selfstab:hotpath*/
func BlockComment() {}

//selfstab:cache
func WrongVerbPlacement() {}

//selfstab:orderinvariant
func ReasonlessLoop(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

//selfstab:hotpath

var detached = 1

// The prose mention of selfstab: deeper in a comment is not an
// annotation and must stay silent.
func Prose() {}

func orderMisplaced() int {
	x := 0
	//selfstab:orderinvariant this is not above a range statement
	x++
	return x
}
