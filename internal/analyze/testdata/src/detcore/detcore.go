// Package detcore is a deterministic-core fixture for the detrand
// analyzer: every determinism rule applies here.
package detcore

import (
	"math/rand"
	"os"
	"time"

	"lintfix/fakerng"
)

// Draws exercises the forbidden and allowed randomness sources.
func Draws(src *fakerng.Source) float64 {
	v := rand.Float64()              // want `global rand\.Float64 draws from shared process-wide state`
	r := rand.New(rand.NewSource(1)) // want `rand\.New constructs a generator outside the rng wrapper package` `rand\.NewSource constructs a generator outside the rng wrapper package`
	v += r.Float64()                 // methods on a seeded instance are fine
	v += src.Float64()               // the wrapper stream is the sanctioned source
	return v
}

// Clock exercises the wall-clock rules.
func Clock() time.Duration {
	t := time.Now()      // want `time\.Now in deterministic package`
	return time.Since(t) // want `time\.Since in deterministic package`
}

// Env exercises the environment rules.
func Env() string {
	if v, ok := os.LookupEnv("SELFSTAB_DEBUG"); ok { // want `os\.LookupEnv in deterministic package`
		return v
	}
	return os.Getenv("HOME") // want `os\.Getenv in deterministic package`
}
