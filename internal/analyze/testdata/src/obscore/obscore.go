// Package obscore is the obspure fixture's engine core: its step path
// may emit observations but must never read them back, and probe
// implementations elsewhere must never call into it.
package obscore

import "lintfix/obsiface"

// Ticks is package-level engine state a probe must never store to.
var Ticks int

// Engine is the fixture's stepping core.
type Engine struct {
	probe obsiface.Probe
	state int
}

// Advance mutates engine state; calling it from a probe callback is the
// feedback loop obspure rule 1 exists to catch.
func (e *Engine) Advance() { e.state++ }

// Step is the fixture's step-path root.
//
//selfstab:mutator
func (e *Engine) Step() {
	if p := e.probe; p != nil {
		p.PhaseBegin(0)
		p.Counter(int64(e.state))
		p.PhaseEnd(0)
	}
	obsiface.Emit(0) // void emission: legal
	e.inner()
}

// inner is reachable from the mutator root, so its obs read is flagged
// even though inner itself carries no annotation.
func (e *Engine) inner() {
	e.state += obsiface.Stats() // want `step-path function inner reads observation state via obsiface\.Stats`
}

// merge is hot-path code: an annotation root in its own right.
//
//selfstab:hotpath
func (e *Engine) merge() {
	if obsiface.Stats() > 0 { // want `step-path function merge reads observation state via obsiface\.Stats`
		e.state++
	}
}

// Report is an export path, not step-path code: reading observation
// state here is legal.
func (e *Engine) Report() int { return obsiface.Stats() }
