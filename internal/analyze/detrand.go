package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRandConfig parameterizes the detrand analyzer so the test fixtures
// can stand in their own module; production code uses DefaultDetRand.
type DetRandConfig struct {
	// Core lists the package paths where every determinism rule applies:
	// no global math/rand, no wall-clock reads, no environment reads.
	// These are the packages whose code runs inside step/apply paths.
	Core []string
	// RNGImport is the seeded-stream package. Any package importing it
	// has declared itself deterministic, so the global math/rand rule
	// extends to it (wall clock and environment stay allowed there:
	// CLIs legitimately time themselves, but must not draw unseeded
	// randomness into trajectories they promise are reproducible).
	RNGImport string
}

// DefaultDetRandConfig covers this repo: the engine core plus every
// internal/rng consumer.
func DefaultDetRandConfig() DetRandConfig {
	return DetRandConfig{
		Core: []string{
			"selfstab",
			"selfstab/internal/runtime",
			"selfstab/internal/traffic",
			"selfstab/internal/energy",
			"selfstab/internal/topology",
			"selfstab/internal/rng",
		},
		RNGImport: "selfstab/internal/rng",
	}
}

// randConstructors are the math/rand functions that build isolated
// generators rather than touching the global source. They are legal
// only inside the rng wrapper package itself: everywhere else, even an
// isolated generator is a second seeding discipline that drifts from
// the master-seed Split tree.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// NewDetRand returns the determinism-source analyzer for cfg.
func NewDetRand(cfg DetRandConfig) *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc: "forbid nondeterministic inputs in deterministic packages: " +
			"global math/rand draws (everywhere the package consumes seeded rng streams), " +
			"and wall-clock or environment reads (in the engine core). " +
			"All randomness must flow from seeded internal/rng split streams so that " +
			"worker-count, tiling and snapshot-replay twins stay bit-identical.",
	}
	core := make(map[string]bool, len(cfg.Core))
	for _, p := range cfg.Core {
		core[p] = true
	}
	a.Run = func(pass *Pass) error {
		isCore := core[pass.Pkg.Path()]
		consumer := false
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == cfg.RNGImport {
				consumer = true
				break
			}
		}
		if !isCore && !consumer {
			return nil
		}
		scanAnnotations(pass) // validate annotations even where no rule fires
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[id]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn on a seeded instance) are fine
				}
				switch path := fn.Pkg().Path(); {
				case path == "math/rand" || path == "math/rand/v2":
					if randConstructors[fn.Name()] {
						if pass.Pkg.Path() == cfg.RNGImport {
							return true // the wrapper package is where generators are built
						}
						pass.Reportf(id.Pos(), "%s.%s constructs a generator outside the rng wrapper package; derive a stream from the master seed (Split/SplitN) instead", pathBase(path), fn.Name())
						return true
					}
					pass.Reportf(id.Pos(), "global %s.%s draws from shared process-wide state; draw from a seeded rng stream (Split/SplitN) instead", pathBase(path), fn.Name())
				case isCore && path == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
					pass.Reportf(id.Pos(), "time.%s in deterministic package %s: wall-clock reads break replay determinism", fn.Name(), pass.Pkg.Path())
				case isCore && path == "os" && (fn.Name() == "Getenv" || fn.Name() == "LookupEnv" || fn.Name() == "Environ"):
					pass.Reportf(id.Pos(), "os.%s in deterministic package %s: environment-conditioned logic breaks replay determinism", fn.Name(), pass.Pkg.Path())
				}
				return true
			})
		}
		return nil
	}
	return a
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
