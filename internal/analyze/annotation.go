package analyze

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar. An annotation is a line comment of the form
//
//	//selfstab:<verb>            (verbs that need no justification)
//	//selfstab:<verb> <reason>   (verbs that must say why)
//
// with no space between `//` and `selfstab:`. The verbs, and where
// each may appear:
//
//	hotpath        doc comment of a function — the function must stay
//	               free of obvious allocation sites (checked by the
//	               hotpath analyzer)
//	orderinvariant on or directly above a `for range` over a map —
//	               declares the loop order-independent; reason required
//	mutator        doc comment of a method — exported fact consumed by
//	               journalchoke: calling this method changes the world
//	               trajectory and must happen under the journal
//	unjournaled    doc comment of a method of the journaled world type —
//	               declares it deliberately outside the op journal, and
//	               exempts its call subtree from the chokepoint walk;
//	               reason required
//	cache          doc or trailing comment of a struct field — stores
//	               to it are derived-state cache fills, not world
//	               mutations
//
// A malformed annotation (unknown verb, missing reason, stray space,
// wrong placement) is a diagnostic, never a silent no-op: an annotation
// that doesn't parse is an invariant that silently stopped being
// enforced, which is exactly the failure mode this suite exists to
// prevent.

const annPrefix = "//selfstab:"

// reasonRequired lists the verbs whose annotations must justify
// themselves inline.
var reasonRequired = map[string]bool{
	"orderinvariant": true,
	"unjournaled":    true,
}

// verbPlacement names where each verb is allowed to appear.
var verbPlacement = map[string]string{
	"hotpath":        "function doc comment",
	"mutator":        "method doc comment",
	"unjournaled":    "method doc comment",
	"orderinvariant": "on or directly above a range statement",
	"cache":          "struct field doc or trailing comment",
}

// annotation is one parsed //selfstab: comment.
type annotation struct {
	verb   string
	reason string
	pos    token.Pos
	line   int
	file   string
	placed bool // consumed by a legal attachment point
}

// annotations indexes a package's parsed annotations by attachment
// point.
type annotations struct {
	funcs  map[*ast.FuncDecl]map[string]*annotation
	fields map[*ast.Field]map[string]*annotation
	// lines holds statement-level annotations (orderinvariant) keyed by
	// file name and the line the annotation sits on.
	lines map[string]map[int]*annotation
}

// fn returns the verb annotation attached to decl's doc comment, or nil.
func (a *annotations) fn(decl *ast.FuncDecl, verb string) *annotation {
	return a.funcs[decl][verb]
}

// field returns the verb annotation attached to a struct field, or nil.
func (a *annotations) field(f *ast.Field, verb string) *annotation {
	return a.fields[f][verb]
}

// stmtAllowed reports whether an orderinvariant annotation covers a
// statement starting at pos: either trailing on the same line or on the
// line directly above.
func (a *annotations) stmtAllowed(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	byLine := a.lines[p.Filename]
	if byLine == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		if ann := byLine[l]; ann != nil && ann.verb == "orderinvariant" {
			ann.placed = true
			return true
		}
	}
	return false
}

// scanAnnotations parses every //selfstab: comment in the pass's files,
// reports malformed or misplaced ones through the pass, and returns the
// well-formed ones indexed by attachment point. Analyzers share this
// scanner; duplicate malformed-annotation diagnostics from multiple
// analyzers are collapsed by the runner.
func scanAnnotations(pass *Pass) *annotations {
	anns := &annotations{
		funcs:  make(map[*ast.FuncDecl]map[string]*annotation),
		fields: make(map[*ast.Field]map[string]*annotation),
		lines:  make(map[string]map[int]*annotation),
	}
	var parsed []*annotation
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if a := parseAnnotation(pass, c); a != nil {
					parsed = append(parsed, a)
					if anns.lines[a.file] == nil {
						anns.lines[a.file] = make(map[int]*annotation)
					}
					anns.lines[a.file][a.line] = a
				}
			}
		}
	}
	if len(parsed) == 0 {
		return anns
	}

	// Attach doc-comment annotations to their functions and fields.
	byPos := make(map[token.Pos]*annotation, len(parsed))
	for _, a := range parsed {
		byPos[a.pos] = a
	}
	attach := func(doc *ast.CommentGroup, claim func(*annotation)) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			if a := byPos[c.Slash]; a != nil {
				claim(a)
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				attach(n.Doc, func(a *annotation) {
					if a.verb == "hotpath" || a.verb == "mutator" || a.verb == "unjournaled" {
						if anns.funcs[n] == nil {
							anns.funcs[n] = make(map[string]*annotation)
						}
						anns.funcs[n][a.verb] = a
						a.placed = true
					}
				})
			case *ast.Field:
				claim := func(a *annotation) {
					if a.verb == "cache" {
						if anns.fields[n] == nil {
							anns.fields[n] = make(map[string]*annotation)
						}
						anns.fields[n][a.verb] = a
						a.placed = true
					}
				}
				attach(n.Doc, claim)
				attach(n.Comment, claim)
			case *ast.RangeStmt:
				// orderinvariant placement is validated lazily: mark any
				// annotation on or directly above a range statement as
				// placed, whether or not the analyzer ends up needing it.
				p := pass.Fset.Position(n.Pos())
				if byLine := anns.lines[p.Filename]; byLine != nil {
					for _, l := range []int{p.Line, p.Line - 1} {
						if a := byLine[l]; a != nil && a.verb == "orderinvariant" {
							a.placed = true
						}
					}
				}
			}
			return true
		})
	}
	for _, a := range parsed {
		if !a.placed {
			pass.Reportf(a.pos, "misplaced //selfstab:%s annotation: it must appear in the %s it governs", a.verb, verbPlacement[a.verb])
		}
	}
	return anns
}

// parseAnnotation parses one comment. It returns the annotation if well
// formed, nil otherwise (reporting the malformation), and nil silently
// for comments that are not selfstab annotations at all.
func parseAnnotation(pass *Pass, c *ast.Comment) *annotation {
	text := c.Text
	if !strings.HasPrefix(text, "//") {
		// Block comment: only worth flagging if it plainly tries to be
		// an annotation.
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(text, "/*")), "selfstab:") {
			pass.Reportf(c.Slash, "malformed selfstab annotation: use a line comment (//selfstab:...), not a block comment")
		}
		return nil
	}
	body := text[2:]
	if !strings.Contains(body, "selfstab:") {
		return nil
	}
	if !strings.HasPrefix(body, "selfstab:") {
		// Mentions of "selfstab:" deeper in prose are fine; a comment
		// that is only whitespace away from the annotation form is a
		// typo that would silently disable enforcement.
		if strings.HasPrefix(strings.TrimLeft(body, " \t"), "selfstab:") {
			pass.Reportf(c.Slash, "malformed selfstab annotation: no space allowed between // and selfstab:")
		}
		return nil
	}
	rest := strings.TrimPrefix(body, "selfstab:")
	verb := rest
	reason := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if verb == "" {
		pass.Reportf(c.Slash, "malformed selfstab annotation: missing verb after selfstab:")
		return nil
	}
	if _, ok := verbPlacement[verb]; !ok {
		pass.Reportf(c.Slash, "malformed selfstab annotation: unknown verb %q (known: cache, hotpath, mutator, orderinvariant, unjournaled)", verb)
		return nil
	}
	if reasonRequired[verb] && reason == "" {
		pass.Reportf(c.Slash, "malformed selfstab annotation: //selfstab:%s requires a reason (//selfstab:%s <why this is safe>)", verb, verb)
		return nil
	}
	p := pass.Fset.Position(c.Slash)
	return &annotation{verb: verb, reason: reason, pos: c.Slash, line: p.Line, file: p.Filename}
}
