package analyze

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// JournalChokeConfig parameterizes the journalchoke analyzer;
// production code uses DefaultJournalChokeConfig.
type JournalChokeConfig struct {
	// PkgPath is the package holding the journaled world type.
	PkgPath string
	// TypeName is the world type whose exported methods are checked.
	TypeName string
	// Choke names the journaling chokepoint method: a method of
	// TypeName whose subtree is, by construction, where journaled
	// mutation happens. Reaching a mutation through it is legal;
	// reaching a mutation around it is the bug.
	Choke string
}

// DefaultJournalChokeConfig pins this repo's snapshot/replay contract:
// every exported (*selfstab.Network) mutator routes through applyOp.
func DefaultJournalChokeConfig() JournalChokeConfig {
	return JournalChokeConfig{PkgPath: "selfstab", TypeName: "Network", Choke: "applyOp"}
}

// mutatorFactKey is the package-fact name under which journalchoke
// exports the set of //selfstab:mutator-annotated methods.
const mutatorFactKey = "mutators"

// NewJournalChoke returns the journal-chokepoint analyzer for cfg.
//
// The snapshot/replay contract (journal.go) holds only if the op
// journal is complete: every exported method of the world type that
// changes the world's trajectory must dispatch through the chokepoint,
// where the op is validated and recorded. The analyzer enforces this
// with call-graph reachability:
//
//  1. Engine packages annotate their trajectory-changing entry points
//     //selfstab:mutator; journalchoke exports them as package facts.
//  2. For each exported method on the world type it walks the static
//     intra-package call graph, NOT descending into the chokepoint
//     (whose subtree is journaled by construction).
//  3. If the walk reaches a marked mutator call, or a store to a field
//     of the world type not annotated //selfstab:cache, the method is
//     mutating the world outside the journal — a diagnostic, unless
//     the method is annotated //selfstab:unjournaled <why> (the escape
//     for performance knobs, which replay reproduces without ops).
//
// A method of the world type annotated //selfstab:unjournaled is a
// vetted subtree: the walk does not descend into it, exactly like the
// chokepoint. That is how deliberately-unjournaled interior helpers
// (auto-compaction, which replay reproduces as a deterministic
// consequence of journaled ops) stay out of every caller's report
// without suppressing the callers themselves.
func NewJournalChoke(cfg JournalChokeConfig) *Analyzer {
	a := &Analyzer{
		Name: "journalchoke",
		Doc: "require every exported mutating method of the journaled world type to " +
			"dispatch through the journal chokepoint, so snapshot replay stays complete " +
			"by construction.",
	}
	a.Run = func(pass *Pass) error {
		anns := scanAnnotations(pass)

		// Phase 1 (every package): export the set of mutator-annotated
		// methods as a fact for importing packages.
		local := map[string]bool{}
		forEachFuncDecl(pass, func(decl *ast.FuncDecl, fn *types.Func) {
			if anns.fn(decl, "mutator") != nil {
				local[fn.FullName()] = true
			}
		})
		if len(local) > 0 {
			pass.ExportPackageFact(mutatorFactKey, local)
		}
		if pass.Pkg.Path() != cfg.PkgPath {
			return nil
		}

		// Phase 2 (the world package): gather mutator facts from the
		// transitive imports, plus any local annotations.
		mutators := map[string]bool{}
		for k := range local {
			mutators[k] = true
		}
		seen := map[string]bool{}
		var walk func(p *types.Package)
		walk = func(p *types.Package) {
			if seen[p.Path()] {
				return
			}
			seen[p.Path()] = true
			if f, ok := pass.ImportPackageFact(p.Path(), mutatorFactKey).(map[string]bool); ok {
				for k := range f {
					mutators[k] = true
				}
			}
			for _, imp := range p.Imports() {
				walk(imp)
			}
		}
		walk(pass.Pkg)

		world := lookupNamedType(pass.Pkg, cfg.TypeName)
		if world == nil {
			return fmt.Errorf("journalchoke: type %s.%s not found", cfg.PkgPath, cfg.TypeName)
		}

		// Build per-function summaries: static callees plus mutation
		// sites (mutator references and world-field stores).
		cacheSet := cacheFields(pass, anns, world)
		sums := map[*types.Func]*funcSummary{}
		exempt := map[*types.Func]bool{}
		var chokeFn *types.Func
		forEachFuncDecl(pass, func(decl *ast.FuncDecl, fn *types.Func) {
			s := summarize(pass, decl, world, mutators, cacheSet)
			sums[fn] = s
			if anns.fn(decl, "unjournaled") != nil {
				exempt[fn] = true
			}
			if fn.Name() == cfg.Choke && receiverIs(fn, world) {
				chokeFn = fn
			}
		})
		if chokeFn == nil {
			pass.Reportf(pass.Files[0].Pos(), "journal chokepoint (*%s).%s not found: the snapshot/replay contract has no enforcement point (renamed without updating the lint config?)", cfg.TypeName, cfg.Choke)
			return nil
		}

		// Phase 3: check each exported method of the world type.
		forEachFuncDecl(pass, func(decl *ast.FuncDecl, fn *types.Func) {
			if !fn.Exported() || !receiverIs(fn, world) || fn == chokeFn {
				return
			}
			if exempt[fn] {
				return
			}
			if site := findUnjournaledMutation(fn, chokeFn, exempt, sums); site != nil {
				pass.Reportf(decl.Name.Pos(),
					"exported method (*%s).%s mutates world state without the %s journal chokepoint (%s); route the mutation through %s or annotate //selfstab:unjournaled <why>",
					cfg.TypeName, fn.Name(), cfg.Choke, site.desc, cfg.Choke)
			}
		})
		return nil
	}
	return a
}

// mutationSite describes one place a function changes world state.
type mutationSite struct {
	desc string
}

type funcSummary struct {
	callees   []*types.Func
	mutations []mutationSite
}

// summarize walks one function body collecting static callees and
// mutation sites. Calls inside closures are attributed to the enclosing
// declaration — conservative and order-safe, since the closure can run
// whenever the method does.
func summarize(pass *Pass, decl *ast.FuncDecl, world *types.Named, mutators map[string]bool, cacheSet map[string]bool) *funcSummary {
	s := &funcSummary{}
	if decl.Body == nil {
		return s
	}
	calleeSet := map[*types.Func]bool{}
	record := func(fn *types.Func, pos ast.Node) {
		if fn == nil {
			return
		}
		if mutators[fn.FullName()] {
			s.mutations = append(s.mutations, mutationSite{desc: "call to " + fn.FullName() + " at " + pass.Fset.Position(pos.Pos()).String()})
		}
		if fn.Pkg() == pass.Pkg && !calleeSet[fn] {
			calleeSet[fn] = true
			s.callees = append(s.callees, fn)
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if fn, ok := pass.Info.Uses[n].(*types.Func); ok {
				record(fn, n)
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[n]; ok {
				if fn, ok := sel.Obj().(*types.Func); ok {
					record(fn, n)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if site := worldStore(pass, lhs, world, cacheSet); site != nil {
					s.mutations = append(s.mutations, *site)
				}
			}
		case *ast.IncDecStmt:
			if site := worldStore(pass, n.X, world, cacheSet); site != nil {
				s.mutations = append(s.mutations, *site)
			}
		}
		return true
	})
	// Deterministic summaries: report the first site in source order.
	sort.SliceStable(s.mutations, func(i, j int) bool { return s.mutations[i].desc < s.mutations[j].desc })
	return s
}

// worldStore reports whether lhs writes through a value of the world
// type (a selector or index chain rooted at a *World/World variable),
// excluding stores whose first field hop is annotated //selfstab:cache.
func worldStore(pass *Pass, lhs ast.Expr, world *types.Named, cacheSet map[string]bool) *mutationSite {
	firstField := ""
	expr := lhs
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			firstField = e.Sel.Name
			expr = e.X
		case *ast.Ident:
			t := pass.Info.Types[e].Type
			if t == nil {
				if obj := pass.Info.Uses[e]; obj != nil {
					t = obj.Type()
				}
			}
			if t == nil || firstField == "" {
				return nil
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); !ok || named.Obj() != world.Obj() {
				return nil
			}
			if cacheSet[firstField] {
				return nil
			}
			return &mutationSite{desc: "store to " + world.Obj().Name() + "." + firstField + " at " + pass.Fset.Position(lhs.Pos()).String()}
		default:
			return nil
		}
	}
}

// cacheFields returns the set of world-struct field names annotated
// //selfstab:cache.
func cacheFields(pass *Pass, anns *annotations, world *types.Named) map[string]bool {
	m := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != world.Obj().Name() {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if anns.field(field, "cache") != nil {
					for _, name := range field.Names {
						m[name.Name] = true
					}
				}
			}
			return true
		})
	}
	return m
}

// findUnjournaledMutation walks the call graph from fn, never entering
// the chokepoint or an //selfstab:unjournaled-vetted method, and returns
// the first mutation site reached (BFS in deterministic order), or nil.
func findUnjournaledMutation(fn, choke *types.Func, exempt map[*types.Func]bool, sums map[*types.Func]*funcSummary) *mutationSite {
	visited := map[*types.Func]bool{fn: true}
	queue := []*types.Func{fn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		s := sums[cur]
		if s == nil {
			continue
		}
		if len(s.mutations) > 0 {
			site := s.mutations[0]
			if cur != fn {
				site.desc = "via " + cur.Name() + ": " + site.desc
			}
			return &site
		}
		for _, callee := range s.callees {
			if callee == choke || exempt[callee] || visited[callee] {
				continue
			}
			visited[callee] = true
			queue = append(queue, callee)
		}
	}
	return nil
}

// forEachFuncDecl invokes fn for every declared function or method in
// the package, in file order.
func forEachFuncDecl(pass *Pass, fn func(*ast.FuncDecl, *types.Func)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn(fd, obj)
		}
	}
}

// lookupNamedType resolves a named type declared in pkg.
func lookupNamedType(pkg *types.Package, name string) *types.Named {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

// receiverIs reports whether fn is a method with receiver type named
// (or pointer to it).
func receiverIs(fn *types.Func, named *types.Named) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}
