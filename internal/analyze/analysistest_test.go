package analyze

import (
	"regexp"
	"strings"
	"testing"
)

// fixtureDir is the nested module holding the analyzer fixtures. Being
// its own module keeps the deliberate violations out of the repo's
// build, test and lint sweeps: `./...` from the repo root never
// descends into it.
const fixtureDir = "testdata/src"

// wantRe extracts the backquoted regexps of a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// expectation is one parsed want: a diagnostic matching re must be
// reported on exactly this file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture loads fixture packages from the nested testdata module.
func loadFixture(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	pkgs, err := Load(fixtureDir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	return pkgs
}

// checkDiagnostics runs the analyzers over pkgs and compares findings
// against the fixtures' `// want` comments, analysistest style: every
// diagnostic must match a want regexp on its own line, and every want
// must be matched by some diagnostic.
func checkDiagnostics(t *testing.T, pkgs []*Package, analyzers ...*Analyzer) {
	t.Helper()
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", p, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
