package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Imports []string // import paths, restricted to other loaded packages
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Imports    []string
	Error      *struct{ Err string }
}

// Load builds the analysis view of the packages matching patterns,
// resolved relative to dir: each matched package is parsed from source
// (non-test files only — the invariants the analyzers enforce live in
// shipped code) and type-checked against gc export data produced by
// `go list -export`, so loading works offline with only the standard
// library. Packages are returned in dependency order: a package always
// precedes the packages that import it, which is what lets analyzer
// facts flow from imported to importing packages in a single pass.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// One invocation with -deps gives the transitive closure: export
	// data for every dependency (the importer's food) and the full
	// package metadata for the roots.
	depArgs := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Imports,Error", "--"}, patterns...)
	deps, err := runGoList(dir, depArgs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// A second, non-deps invocation names the roots to analyze.
	rootArgs := append([]string{"list", "-e", "-json=ImportPath,Error", "--"}, patterns...)
	rootList, err := runGoList(dir, rootArgs)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(deps))
	for _, p := range deps {
		byPath[p.ImportPath] = p
	}
	var roots []*listedPackage
	for _, r := range rootList {
		p, ok := byPath[r.ImportPath]
		if !ok {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analyze: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		roots = append(roots, p)
	}
	sortByDeps(roots)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analyze: no export data for %q (run `go build ./...` first?)", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, p := range roots {
		pkg, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		rootSet := make(map[string]bool, len(roots))
		for _, r := range roots {
			rootSet[r.ImportPath] = true
		}
		for _, ip := range p.Imports {
			if rootSet[ip] {
				pkg.Imports = append(pkg.Imports, ip)
			}
		}
		out = append(out, pkg)
	}
	return out, nil
}

func runGoList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analyze: go %s: %v\n%s", args[0], err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analyze: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// sortByDeps orders roots so every package precedes its importers
// (stable within a rank: lexical by import path, so runs are
// reproducible).
func sortByDeps(roots []*listedPackage) {
	rank := make(map[string]int, len(roots))
	byPath := make(map[string]*listedPackage, len(roots))
	for _, p := range roots {
		byPath[p.ImportPath] = p
	}
	var depth func(p *listedPackage, seen map[string]bool) int
	depth = func(p *listedPackage, seen map[string]bool) int {
		if r, ok := rank[p.ImportPath]; ok {
			return r
		}
		if seen[p.ImportPath] {
			return 0 // import cycle: the compiler rejects it; don't recurse forever
		}
		seen[p.ImportPath] = true
		d := 0
		for _, ip := range p.Imports {
			if q, ok := byPath[ip]; ok {
				if dd := depth(q, seen) + 1; dd > d {
					d = dd
				}
			}
		}
		rank[p.ImportPath] = d
		return d
	}
	for _, p := range roots {
		depth(p, make(map[string]bool))
	}
	sort.SliceStable(roots, func(i, j int) bool {
		ri, rj := rank[roots[i].ImportPath], rank[roots[j].ImportPath]
		if ri != rj {
			return ri < rj
		}
		return roots[i].ImportPath < roots[j].ImportPath
	})
}

func typecheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analyze: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		PkgPath: p.ImportPath,
		Dir:     p.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
