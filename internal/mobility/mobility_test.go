package mobility

import (
	"math"
	"testing"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
)

func startPositions(n int, seed int64) []geom.Point {
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: src.Float64(), Y: src.Float64()}
	}
	return pts
}

func TestSpeedToUnits(t *testing.T) {
	if got := SpeedToUnits(1600); got != 1.6 {
		t.Errorf("SpeedToUnits(1600) = %v", got)
	}
	if got := SpeedToUnits(1.6); math.Abs(got-0.0016) > 1e-15 {
		t.Errorf("pedestrian speed = %v units/s", got)
	}
}

func TestRandomWalkValidation(t *testing.T) {
	pts := startPositions(5, 1)
	r := geom.UnitSquare()
	if _, err := NewRandomWalk(pts, r, -1, 1, 10, rng.New(1)); err == nil {
		t.Error("negative min speed accepted")
	}
	if _, err := NewRandomWalk(pts, r, 2, 1, 10, rng.New(1)); err == nil {
		t.Error("inverted speed range accepted")
	}
	if _, err := NewRandomWalk(pts, r, 0, 1, 10, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestRandomWalkStaysInRegion(t *testing.T) {
	pts := startPositions(50, 2)
	r := geom.UnitSquare()
	w, err := NewRandomWalk(pts, r, 0, SpeedToUnits(10), 30, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2000; step++ {
		w.Step(2)
		for i, p := range w.Positions() {
			if !r.Contains(p) {
				t.Fatalf("step %d: node %d escaped to %v", step, i, p)
			}
		}
	}
}

func TestRandomWalkZeroSpeedIsStationary(t *testing.T) {
	pts := startPositions(10, 4)
	w, err := NewRandomWalk(pts, geom.UnitSquare(), 0, 0, 10, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	w.Step(100)
	for i, p := range w.Positions() {
		if p != pts[i] {
			t.Errorf("node %d moved at speed 0: %v -> %v", i, pts[i], p)
		}
	}
}

func TestRandomWalkDisplacementScalesWithSpeed(t *testing.T) {
	displacement := func(speed float64) float64 {
		pts := startPositions(100, 6)
		w, err := NewRandomWalk(pts, geom.UnitSquare(), speed, speed, 0, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		w.Step(2)
		total := 0.0
		for i, p := range w.Positions() {
			total += p.Dist(pts[i])
		}
		return total / 100
	}
	slow := displacement(SpeedToUnits(1.6))
	fast := displacement(SpeedToUnits(10))
	// Over 2 seconds with no border effects to speak of, displacement is
	// speed * 2.
	if math.Abs(slow-0.0032) > 0.0005 {
		t.Errorf("pedestrian displacement = %v, want ~0.0032", slow)
	}
	if fast < 5*slow {
		t.Errorf("vehicle displacement %v not ~6x pedestrian %v", fast, slow)
	}
}

func TestRandomWalkZeroDtNoop(t *testing.T) {
	pts := startPositions(5, 8)
	w, err := NewRandomWalk(pts, geom.UnitSquare(), 0.1, 0.1, 10, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	w.Step(0)
	w.Step(-1)
	for i, p := range w.Positions() {
		if p != pts[i] {
			t.Error("Step(<=0) moved nodes")
			_ = i
			break
		}
	}
}

func TestRandomWalkDeterminism(t *testing.T) {
	pts := startPositions(20, 10)
	a, err := NewRandomWalk(pts, geom.UnitSquare(), 0, 0.01, 30, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomWalk(pts, geom.UnitSquare(), 0, 0.01, 30, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 50; s++ {
		a.Step(2)
		b.Step(2)
	}
	for i := range pts {
		if a.Positions()[i] != b.Positions()[i] {
			t.Fatal("same-seed walks diverged")
		}
	}
}

func TestRandomWalkName(t *testing.T) {
	w, err := NewRandomWalk(startPositions(1, 1), geom.UnitSquare(), 0, 0, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "random-walk" {
		t.Error(w.Name())
	}
}

func TestWaypointValidation(t *testing.T) {
	pts := startPositions(5, 1)
	if _, err := NewRandomWaypoint(pts, geom.UnitSquare(), 1, 0, rng.New(1)); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewRandomWaypoint(pts, geom.UnitSquare(), 0, 1, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestWaypointStaysInRegion(t *testing.T) {
	pts := startPositions(50, 12)
	r := geom.UnitSquare()
	m, err := NewRandomWaypoint(pts, r, 0, SpeedToUnits(10), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 1000; step++ {
		m.Step(2)
		for i, p := range m.Positions() {
			if !r.Contains(p) {
				t.Fatalf("node %d escaped to %v", i, p)
			}
		}
	}
}

func TestWaypointMovesTowardDestination(t *testing.T) {
	pts := []geom.Point{{X: 0.5, Y: 0.5}}
	m, err := NewRandomWaypoint(pts, geom.UnitSquare(), 0.01, 0.01, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	destBefore := m.dest[0]
	distBefore := pts[0].Dist(destBefore)
	m.Step(1)
	distAfter := m.Positions()[0].Dist(destBefore)
	if distAfter >= distBefore {
		t.Errorf("did not approach destination: %v -> %v", distBefore, distAfter)
	}
}

func TestWaypointArrivalRedraws(t *testing.T) {
	pts := []geom.Point{{X: 0.5, Y: 0.5}}
	// Fast node: crosses the region many times within one step, exercising
	// the multi-leg loop.
	m, err := NewRandomWaypoint(pts, geom.UnitSquare(), 1, 1, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(10)
	if !geom.UnitSquare().Contains(m.Positions()[0]) {
		t.Error("escaped region during multi-leg step")
	}
}

func TestWaypointName(t *testing.T) {
	m, err := NewRandomWaypoint(startPositions(1, 1), geom.UnitSquare(), 0, 0.1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "random-waypoint" {
		t.Error(m.Name())
	}
}

func TestWaypointZeroSpeed(t *testing.T) {
	pts := startPositions(3, 16)
	m, err := NewRandomWaypoint(pts, geom.UnitSquare(), 0, 0, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	m.Step(5) // must not loop forever on stationary nodes
	for i, p := range m.Positions() {
		if p != pts[i] {
			t.Error("stationary node moved")
			_ = i
		}
	}
}
