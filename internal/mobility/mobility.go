// Package mobility moves nodes around the deployment region, reproducing
// the paper's Section 5 mobility study: nodes move randomly at randomly
// chosen speeds for 15 minutes while the clustering is sampled every two
// seconds. Two classical models are provided — random walk (random heading,
// billiard reflection at the borders, occasional re-orientation) and random
// waypoint (pick a destination, travel to it, repeat).
//
// The unit square maps to a 1 km x 1 km field, so a pedestrian speed of
// 1.6 m/s is 0.0016 units/s; see MetersPerUnit.
//
// Models advance their position slices in place and Step allocates
// nothing, which pairs with topology.GridIndex: feeding Positions() to
// its incremental Update after each Step repairs the unit-disk graph for
// exactly the nodes that moved instead of rebuilding it — the intended
// hot loop for mobility experiments.
package mobility

import (
	"errors"
	"fmt"
	"math"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
)

// MetersPerUnit is the physical scale of the unit square: the paper's radio
// ranges (0.05-0.1 units) then correspond to 50-100 m, typical 802.11
// outdoor ranges, and its speed bands (1.6 m/s pedestrian, 10 m/s vehicle)
// convert naturally.
const MetersPerUnit = 1000.0

// SpeedToUnits converts meters/second into region units/second.
func SpeedToUnits(metersPerSecond float64) float64 {
	return metersPerSecond / MetersPerUnit
}

// Model advances node positions through time.
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// Step advances the model by dt seconds.
	Step(dt float64)
	// Positions returns the current node positions. The returned slice is
	// owned by the model; callers must copy if they retain it.
	Positions() []geom.Point
}

// RandomWalk moves every node along an individual heading at an individual
// speed drawn uniformly from [MinSpeed, MaxSpeed] (units/s). Nodes reflect
// off the region borders and re-draw heading and speed on a Poisson clock
// with mean TurnEvery seconds.
type RandomWalk struct {
	region    geom.Rect
	pos       []geom.Point
	vel       []geom.Point // heading scaled by speed, units/s
	untilTurn []float64    // seconds until the next re-orientation
	minSpeed  float64
	maxSpeed  float64
	turnEvery float64
	src       *rng.Source
}

var _ Model = (*RandomWalk)(nil)

// NewRandomWalk starts a walk at the given positions. minSpeed and maxSpeed
// are in units/s; turnEvery is the mean seconds between re-orientations
// (<= 0 means never turn, straight-line billiards).
func NewRandomWalk(pts []geom.Point, region geom.Rect, minSpeed, maxSpeed, turnEvery float64, src *rng.Source) (*RandomWalk, error) {
	if err := validateSpeeds(minSpeed, maxSpeed); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("mobility: nil rng source")
	}
	w := &RandomWalk{
		region:    region,
		pos:       append([]geom.Point(nil), pts...),
		vel:       make([]geom.Point, len(pts)),
		untilTurn: make([]float64, len(pts)),
		minSpeed:  minSpeed,
		maxSpeed:  maxSpeed,
		turnEvery: turnEvery,
		src:       src,
	}
	for i := range w.vel {
		w.vel[i] = w.drawVelocity()
		w.untilTurn[i] = w.drawTurnDelay()
	}
	return w, nil
}

func validateSpeeds(minSpeed, maxSpeed float64) error {
	if minSpeed < 0 || maxSpeed < minSpeed {
		return fmt.Errorf("mobility: invalid speed range [%v, %v]", minSpeed, maxSpeed)
	}
	return nil
}

func (w *RandomWalk) drawVelocity() geom.Point {
	speed := w.minSpeed + w.src.Float64()*(w.maxSpeed-w.minSpeed)
	theta := w.src.Float64() * 2 * math.Pi
	return geom.Point{X: speed * math.Cos(theta), Y: speed * math.Sin(theta)}
}

func (w *RandomWalk) drawTurnDelay() float64 {
	if w.turnEvery <= 0 {
		return math.Inf(1)
	}
	return w.src.ExpFloat64() * w.turnEvery
}

// Name implements Model.
func (w *RandomWalk) Name() string { return "random-walk" }

// Step implements Model.
func (w *RandomWalk) Step(dt float64) {
	if dt <= 0 {
		return
	}
	for i := range w.pos {
		w.untilTurn[i] -= dt
		if w.untilTurn[i] <= 0 {
			w.vel[i] = w.drawVelocity()
			w.untilTurn[i] = w.drawTurnDelay()
		}
		next := w.pos[i].Add(w.vel[i].Scale(dt))
		w.pos[i], w.vel[i] = w.region.Reflect(next, w.vel[i])
	}
}

// Positions implements Model.
func (w *RandomWalk) Positions() []geom.Point { return w.pos }

// RandomWaypoint moves every node toward an individually chosen uniform
// destination at an individually drawn speed, re-drawing both on arrival.
type RandomWaypoint struct {
	region   geom.Rect
	pos      []geom.Point
	dest     []geom.Point
	speed    []float64
	minSpeed float64
	maxSpeed float64
	src      *rng.Source
}

var _ Model = (*RandomWaypoint)(nil)

// NewRandomWaypoint starts a waypoint walk at the given positions.
func NewRandomWaypoint(pts []geom.Point, region geom.Rect, minSpeed, maxSpeed float64, src *rng.Source) (*RandomWaypoint, error) {
	if err := validateSpeeds(minSpeed, maxSpeed); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("mobility: nil rng source")
	}
	m := &RandomWaypoint{
		region:   region,
		pos:      append([]geom.Point(nil), pts...),
		dest:     make([]geom.Point, len(pts)),
		speed:    make([]float64, len(pts)),
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		src:      src,
	}
	for i := range m.dest {
		m.redraw(i)
	}
	return m, nil
}

func (m *RandomWaypoint) redraw(i int) {
	m.dest[i] = geom.Point{
		X: m.region.MinX + m.src.Float64()*m.region.Width(),
		Y: m.region.MinY + m.src.Float64()*m.region.Height(),
	}
	m.speed[i] = m.minSpeed + m.src.Float64()*(m.maxSpeed-m.minSpeed)
}

// Name implements Model.
func (m *RandomWaypoint) Name() string { return "random-waypoint" }

// Step implements Model.
func (m *RandomWaypoint) Step(dt float64) {
	if dt <= 0 {
		return
	}
	for i := range m.pos {
		remaining := dt
		for remaining > 0 {
			to := m.dest[i].Sub(m.pos[i])
			distance := to.Norm()
			travel := m.speed[i] * remaining
			if m.speed[i] <= 0 {
				break // stationary node (speed range includes 0)
			}
			if travel < distance {
				m.pos[i] = m.pos[i].Add(to.Scale(travel / distance))
				break
			}
			// Arrive and pick the next leg with the leftover time.
			m.pos[i] = m.dest[i]
			remaining -= distance / m.speed[i]
			m.redraw(i)
		}
	}
}

// Positions implements Model.
func (m *RandomWaypoint) Positions() []geom.Point { return m.pos }
