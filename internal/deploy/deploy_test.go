package deploy

import (
	"math"
	"testing"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
)

func TestUniformCountAndRegion(t *testing.T) {
	src := rng.New(1)
	d := Uniform(200, geom.UnitSquare(), IDRandom, src)
	if d.N() != 200 {
		t.Fatalf("N = %d", d.N())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformZero(t *testing.T) {
	d := Uniform(0, geom.UnitSquare(), IDRandom, rng.New(1))
	if d.N() != 0 {
		t.Fatal("expected empty deployment")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMeanCount(t *testing.T) {
	src := rng.New(7)
	const intensity = 1000.0
	total := 0
	const runs = 50
	for i := 0; i < runs; i++ {
		d := Poisson(intensity, geom.UnitSquare(), IDSequential, src)
		total += d.N()
	}
	mean := float64(total) / runs
	if math.Abs(mean-intensity) > 25 {
		t.Errorf("Poisson(1000) mean count = %v", mean)
	}
}

func TestPoissonScalesWithArea(t *testing.T) {
	src := rng.New(9)
	half := geom.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 1}
	total := 0
	const runs = 50
	for i := 0; i < runs; i++ {
		total += Poisson(1000, half, IDSequential, src).N()
	}
	mean := float64(total) / runs
	if math.Abs(mean-500) > 25 {
		t.Errorf("Poisson over half area: mean = %v, want ~500", mean)
	}
}

func TestGridLayout(t *testing.T) {
	d := Grid(4, 5, geom.UnitSquare(), IDSequential, rng.New(1))
	if d.N() != 20 {
		t.Fatalf("N = %d", d.N())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pitch between horizontal neighbors is width/cols = 0.2.
	got := d.Points[1].X - d.Points[0].X
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("horizontal pitch = %v, want 0.2", got)
	}
	// Vertical pitch is height/rows = 0.25.
	got = d.Points[5].Y - d.Points[0].Y
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("vertical pitch = %v, want 0.25", got)
	}
	// Half-pitch margin.
	if math.Abs(d.Points[0].X-0.1) > 1e-12 || math.Abs(d.Points[0].Y-0.125) > 1e-12 {
		t.Errorf("first point = %v", d.Points[0])
	}
}

func TestGridClampsDegenerate(t *testing.T) {
	d := Grid(0, -3, geom.UnitSquare(), IDSequential, rng.New(1))
	if d.N() != 1 {
		t.Errorf("degenerate grid should have 1 node, got %d", d.N())
	}
}

func TestGridForIntensity1000(t *testing.T) {
	d := GridForIntensity(1000, geom.UnitSquare(), IDSequential, rng.New(1))
	if d.N() != 32*32 {
		t.Errorf("grid for lambda=1000 should be 32x32=1024 nodes, got %d", d.N())
	}
}

func TestIDRowMajorSpatiallyOrdered(t *testing.T) {
	src := rng.New(3)
	d := Grid(8, 8, geom.UnitSquare(), IDRowMajor, src)
	// Row-major: the node at grid (r, c) has id r*8+c since Grid generates
	// points bottom-to-top, left-to-right already.
	for i := range d.IDs {
		if d.IDs[i] != int64(i) {
			t.Fatalf("row-major ids on aligned grid should be identity, got IDs[%d]=%d", i, d.IDs[i])
		}
	}
}

func TestIDRowMajorOnRandomPoints(t *testing.T) {
	src := rng.New(4)
	d := Uniform(100, geom.UnitSquare(), IDRowMajor, src)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The node with id 0 must be the one with minimal Y (ties by X).
	var min geom.Point = d.Points[0]
	var zero geom.Point
	for i, id := range d.IDs {
		p := d.Points[i]
		if p.Y < min.Y || (p.Y == min.Y && p.X < min.X) {
			min = p
		}
		if id == 0 {
			zero = p
		}
	}
	if zero != min {
		t.Errorf("id 0 at %v, but bottom-most node is %v", zero, min)
	}
}

func TestIDRandomIsPermutation(t *testing.T) {
	d := Uniform(50, geom.UnitSquare(), IDRandom, rng.New(5))
	seen := make([]bool, 50)
	for _, id := range d.IDs {
		if id < 0 || id >= 50 || seen[id] {
			t.Fatalf("bad id %d", id)
		}
		seen[id] = true
	}
}

func TestIDRandomShufflesSometimes(t *testing.T) {
	d := Uniform(50, geom.UnitSquare(), IDRandom, rng.New(6))
	fixed := 0
	for i, id := range d.IDs {
		if id == int64(i) {
			fixed++
		}
	}
	if fixed > 10 {
		t.Errorf("random id assignment looks like identity: %d fixed points", fixed)
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	d := &Deployment{
		Points: []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}},
		IDs:    []int64{7, 7},
		Region: geom.UnitSquare(),
	}
	if err := d.Validate(); err == nil {
		t.Error("duplicate ids not caught")
	}
}

func TestValidateCatchesLengthMismatch(t *testing.T) {
	d := &Deployment{
		Points: []geom.Point{{X: 0.1, Y: 0.1}},
		IDs:    []int64{1, 2},
		Region: geom.UnitSquare(),
	}
	if err := d.Validate(); err == nil {
		t.Error("length mismatch not caught")
	}
}

func TestValidateCatchesOutOfRegion(t *testing.T) {
	d := &Deployment{
		Points: []geom.Point{{X: 2, Y: 2}},
		IDs:    []int64{0},
		Region: geom.UnitSquare(),
	}
	if err := d.Validate(); err == nil {
		t.Error("out-of-region point not caught")
	}
}

func TestPerturbedGridStaysInRegion(t *testing.T) {
	d := PerturbedGrid(10, 10, 0.9, geom.UnitSquare(), IDRandom, rng.New(8))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() != 100 {
		t.Errorf("N = %d", d.N())
	}
}

func TestPerturbedGridZeroJitterIsGrid(t *testing.T) {
	a := PerturbedGrid(5, 5, 0, geom.UnitSquare(), IDSequential, rng.New(9))
	b := Grid(5, 5, geom.UnitSquare(), IDSequential, rng.New(9))
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("jitter=0 differs from plain grid at %d", i)
		}
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a := Poisson(200, geom.UnitSquare(), IDRandom, rng.New(42))
	b := Poisson(200, geom.UnitSquare(), IDRandom, rng.New(42))
	if a.N() != b.N() {
		t.Fatal("same seed, different counts")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] || a.IDs[i] != b.IDs[i] {
			t.Fatal("same seed, different deployment")
		}
	}
}

func TestIDStrategyString(t *testing.T) {
	tests := []struct {
		s    IDStrategy
		want string
	}{
		{IDRandom, "random-ids"},
		{IDRowMajor, "row-major-ids"},
		{IDSequential, "sequential-ids"},
		{IDStrategy(99), "IDStrategy(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestHotspotsValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Hotspots(-1, 2, 0.05, geom.UnitSquare(), IDRandom, src); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Hotspots(10, 0, 0.05, geom.UnitSquare(), IDRandom, src); err == nil {
		t.Error("zero hotspots accepted")
	}
	if _, err := Hotspots(10, 2, 0, geom.UnitSquare(), IDRandom, src); err == nil {
		t.Error("zero spread accepted")
	}
}

func TestHotspotsInRegionAndValid(t *testing.T) {
	d, err := Hotspots(300, 4, 0.04, geom.UnitSquare(), IDRandom, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 300 {
		t.Fatalf("N = %d", d.N())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotsAreConcentrated(t *testing.T) {
	// With a tiny spread, the mean nearest-neighbor distance must be far
	// below the uniform deployment's.
	nnMean := func(pts []geom.Point) float64 {
		total := 0.0
		for i, p := range pts {
			best := 10.0
			for j, q := range pts {
				if i != j {
					if dd := p.Dist(q); dd < best {
						best = dd
					}
				}
			}
			total += best
		}
		return total / float64(len(pts))
	}
	hot, err := Hotspots(200, 3, 0.02, geom.UnitSquare(), IDRandom, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	uni := Uniform(200, geom.UnitSquare(), IDRandom, rng.New(22))
	if nnMean(hot.Points) >= nnMean(uni.Points) {
		t.Error("hotspot deployment not more concentrated than uniform")
	}
}

func TestHotspotsDeterministic(t *testing.T) {
	a, err := Hotspots(50, 2, 0.05, geom.UnitSquare(), IDRandom, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hotspots(50, 2, 0.05, geom.UnitSquare(), IDRandom, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("hotspots not deterministic")
		}
	}
}
