// Package deploy generates node deployments for the experiments: Poisson
// point processes and regular grids in the unit square (the paper's Section
// 5 workloads), a fixed-size uniform variant, and identifier-assignment
// strategies including the adversarial row-major numbering that defeats
// identifier-based tie-breaking (Table 5).
package deploy

import (
	"fmt"
	"math"
	"sort"

	"selfstab/internal/geom"
	"selfstab/internal/rng"
)

// Deployment is a set of node positions together with their application
// identifiers. Identifiers are unique but otherwise arbitrary; the paper's
// adversarial scenario depends on their spatial correlation.
type Deployment struct {
	Points []geom.Point
	IDs    []int64
	Region geom.Rect
}

// N returns the number of deployed nodes.
func (d *Deployment) N() int { return len(d.Points) }

// Validate checks internal consistency: matching lengths, unique IDs, and
// all points inside the region.
func (d *Deployment) Validate() error {
	if len(d.Points) != len(d.IDs) {
		return fmt.Errorf("deployment: %d points but %d ids", len(d.Points), len(d.IDs))
	}
	seen := make(map[int64]int, len(d.IDs))
	for i, id := range d.IDs {
		if j, dup := seen[id]; dup {
			return fmt.Errorf("deployment: duplicate id %d at nodes %d and %d", id, j, i)
		}
		seen[id] = i
	}
	for i, p := range d.Points {
		if !d.Region.Contains(p) {
			return fmt.Errorf("deployment: node %d at %v outside region", i, p)
		}
	}
	return nil
}

// IDStrategy decides how identifiers are assigned to positions.
type IDStrategy int

const (
	// IDRandom permutes identifiers uniformly at random — the paper's
	// "homogeneously and randomly distributed" identifier case.
	IDRandom IDStrategy = iota + 1
	// IDRowMajor numbers nodes left-to-right, bottom-to-top, the
	// adversarial distribution of the paper's grid scenario (Table 5):
	// identifiers are maximally spatially correlated.
	IDRowMajor
	// IDSequential numbers nodes in generation order.
	IDSequential
)

// String implements fmt.Stringer for experiment labels.
func (s IDStrategy) String() string {
	switch s {
	case IDRandom:
		return "random-ids"
	case IDRowMajor:
		return "row-major-ids"
	case IDSequential:
		return "sequential-ids"
	default:
		return fmt.Sprintf("IDStrategy(%d)", int(s))
	}
}

// assignIDs fills d.IDs for the given strategy.
func assignIDs(d *Deployment, s IDStrategy, src *rng.Source) {
	n := len(d.Points)
	d.IDs = make([]int64, n)
	switch s {
	case IDRandom:
		perm := src.Perm(n)
		for i, p := range perm {
			d.IDs[i] = int64(p)
		}
	case IDRowMajor:
		// Sort node indices by (Y, X) and hand out increasing ids: lowest
		// ids bottom-left, highest top-right.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			pa, pb := d.Points[order[a]], d.Points[order[b]]
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
		for rank, idx := range order {
			d.IDs[idx] = int64(rank)
		}
	default: // IDSequential and anything unknown
		for i := range d.IDs {
			d.IDs[i] = int64(i)
		}
	}
}

// Poisson deploys a homogeneous Poisson point process of the given
// intensity (expected points per unit area) in region. The realized count is
// Poisson-distributed; positions are uniform. This is the paper's random
// geometry workload (lambda in {500..2000}, typically 1000).
func Poisson(intensity float64, region geom.Rect, ids IDStrategy, src *rng.Source) *Deployment {
	n := src.Poisson(intensity * region.Area())
	return Uniform(n, region, ids, src)
}

// Uniform deploys exactly n uniformly random points in region.
func Uniform(n int, region geom.Rect, ids IDStrategy, src *rng.Source) *Deployment {
	d := &Deployment{
		Points: make([]geom.Point, n),
		Region: region,
	}
	for i := range d.Points {
		d.Points[i] = geom.Point{
			X: region.MinX + src.Float64()*region.Width(),
			Y: region.MinY + src.Float64()*region.Height(),
		}
	}
	assignIDs(d, ids, src)
	return d
}

// Grid deploys a rows x cols lattice filling region, with a half-pitch
// margin on each side so the pitch is uniform (pitch = width/cols). With
// rows = cols = 32 in the unit square this is the paper's grid scenario:
// 1024 nodes (~lambda = 1000) at pitch ~0.031, below every studied radio
// range.
func Grid(rows, cols int, region geom.Rect, ids IDStrategy, src *rng.Source) *Deployment {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	d := &Deployment{
		Points: make([]geom.Point, 0, rows*cols),
		Region: region,
	}
	px := region.Width() / float64(cols)
	py := region.Height() / float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			d.Points = append(d.Points, geom.Point{
				X: region.MinX + (float64(c)+0.5)*px,
				Y: region.MinY + (float64(r)+0.5)*py,
			})
		}
	}
	assignIDs(d, ids, src)
	return d
}

// GridForIntensity returns the square grid whose node count best
// approximates a Poisson intensity over the unit square: side =
// round(sqrt(intensity)). The paper's "grid with lambda equal to 1000" maps
// to a 32x32 grid.
func GridForIntensity(intensity float64, region geom.Rect, ids IDStrategy, src *rng.Source) *Deployment {
	side := int(math.Round(math.Sqrt(intensity)))
	if side < 1 {
		side = 1
	}
	return Grid(side, side, region, ids, src)
}

// Hotspots deploys n nodes around k Gaussian concentration points — the
// heterogeneous "disaster area" scenario of the paper's introduction
// (responders cluster around incident sites). spread is the Gaussian
// standard deviation as a fraction of the region extent; points are
// clamped to the region. The density metric is designed to put one
// cluster-head per hotspot instead of splitting co-located groups.
func Hotspots(n, k int, spread float64, region geom.Rect, ids IDStrategy, src *rng.Source) (*Deployment, error) {
	if n < 0 {
		return nil, fmt.Errorf("deploy: negative node count %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("deploy: need at least one hotspot, got %d", k)
	}
	if spread <= 0 {
		return nil, fmt.Errorf("deploy: spread must be positive, got %v", spread)
	}
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{
			X: region.MinX + src.Float64()*region.Width(),
			Y: region.MinY + src.Float64()*region.Height(),
		}
	}
	d := &Deployment{
		Points: make([]geom.Point, n),
		Region: region,
	}
	sx := spread * region.Width()
	sy := spread * region.Height()
	for i := range d.Points {
		c := centers[src.Intn(k)]
		d.Points[i] = region.Clamp(geom.Point{
			X: c.X + src.NormFloat64()*sx,
			Y: c.Y + src.NormFloat64()*sy,
		})
	}
	assignIDs(d, ids, src)
	return d, nil
}

// PerturbedGrid deploys a grid whose points are jittered by a uniform
// offset up to jitter*pitch in each axis. It interpolates between the
// adversarial grid (jitter 0) and a random deployment, which is useful for
// ablating how much spatial regularity the DAG mechanism actually needs.
func PerturbedGrid(rows, cols int, jitter float64, region geom.Rect, ids IDStrategy, src *rng.Source) *Deployment {
	d := Grid(rows, cols, region, IDSequential, src)
	px := region.Width() / float64(cols)
	py := region.Height() / float64(rows)
	for i := range d.Points {
		d.Points[i].X += (src.Float64()*2 - 1) * jitter * px
		d.Points[i].Y += (src.Float64()*2 - 1) * jitter * py
		d.Points[i] = region.Clamp(d.Points[i])
	}
	assignIDs(d, ids, src)
	return d
}
