package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenSnapshot is a fixed document exercising every payload shape the
// format carries: one op of each kind-family, a non-trivial blueprint,
// floats that stress round-tripping.
func goldenSnapshot() *Snapshot {
	bp := Blueprint{
		Deploy: Deployment{Kind: DeployRandom, N: 64},
		Options: Options{
			Seed: 7, Range: 0.125, DAG: true, Gamma: 81, Sticky: true,
			Tau: 1, CacheTTL: 8, Activation: 1, StableWindow: 5, Tiles: 4,
		},
	}
	ops := []Op{
		{Step: 0, Kind: OpAttachChurn, Churn: &ChurnConfig{
			ArrivalRate: 0.3, DepartureRate: 0.1, CrashRate: 0.2,
			SleepSteps: 10, MinAlive: 2,
		}},
		{Step: 3, Kind: OpAttachTraffic, Traffic: &TrafficConfig{
			QueueCap: 32, Discipline: "drophead", Budget: 2, TTL: 64,
			Flows: []Flow{
				{Kind: "cbr", SrcID: 1, DstID: 2, Rate: 0.5, Start: 5, Stop: 100},
				{Kind: "poisson", DstID: 9, Rate: 0.1, HotspotSources: 6},
			},
		}},
		{Step: 3, Kind: OpAttachEnergy, Energy: &EnergyConfig{
			Capacity: 0.2, IdleHeadCost: 0.002, TxCost: 0.0005,
			Rotation: true, RotationLevels: 8,
		}},
		{Step: 7, Kind: OpFaults, Frac: 0.25},
		{Step: 9, Kind: OpAddNodes, Points: []Point{{X: 0.1, Y: 0.2}, {X: 0.3333333333333333, Y: 0.9}}},
		{Step: 11, Kind: OpCrashNodes, IDs: []int64{4, 17}},
		{Step: 12, Kind: OpSleepNodes, IDs: []int64{5}},
		{Step: 14, Kind: OpWakeNodes, IDs: []int64{5}},
		{Step: 15, Kind: OpRemoveNodes, IDs: []int64{6}},
		{Step: 16, Kind: OpSetAutoCompact, Frac: 0.25},
		{Step: 18, Kind: OpCompact},
		{Step: 20, Kind: OpSetPositions, Points: []Point{{X: 0.5, Y: 0.5}}},
		{Step: 21, Kind: OpSetDefense, Defense: &DefenseConfig{
			HeadTokens: true, HeadRate: 0.75, HeadBurst: 4, SourceCap: 3,
		}},
		{Step: 21, Kind: OpSpawnFlows, Traffic: &TrafficConfig{
			Flows: []Flow{{Kind: "cbr", SrcID: 3, DstID: 8, Rate: 2.5}},
		}},
		{Step: 21, Kind: OpScaleDensity, IDs: []int64{11, 12}, Scale: 4.5},
		{Step: 21, Kind: OpEvictNodes, IDs: []int64{11}},
		{Step: 22, Kind: OpDetachTraffic},
		{Step: 22, Kind: OpDetachEnergy},
		{Step: 22, Kind: OpDetachChurn},
	}
	return New(bp, ops, 25)
}

// TestGoldenFile pins the on-disk encoding: any accidental format drift —
// a renamed field, reordered struct, changed float formatting — fails
// here before it corrupts anyone's checkpoints. Regenerate deliberately
// with SELFSTAB_UPDATE_GOLDEN=1 go test ./internal/snapshot (and bump
// Version if the change is semantic).
func TestGoldenFile(t *testing.T) {
	path := filepath.Join("testdata", "golden_v2.json")
	var buf bytes.Buffer
	if err := goldenSnapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("SELFSTAB_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with SELFSTAB_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoding drifted from the golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestGoldenRoundTrip: the golden document decodes back to the exact
// in-memory snapshot it was built from.
func TestGoldenRoundTrip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if want := goldenSnapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("decoded snapshot differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestEncodeDecodeRoundTrip: an encode/decode cycle is the identity,
// including float bit patterns.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := goldenSnapshot()
	s.Blueprint.Deploy = Deployment{Kind: DeployExplicit, Points: []Point{
		{X: 0.123456789012345678, Y: 1.0 / 3.0},
		{X: 5e-324, Y: 0.9999999999999999},
	}}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip not identity:\ngot  %+v\nwant %+v", got, s)
	}
}

// TestDecodeRejectsVersionMismatch: a future (or past) format version is
// refused with an error naming both versions — never replayed.
func TestDecodeRejectsVersionMismatch(t *testing.T) {
	s := goldenSnapshot()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	doc := strings.Replace(buf.String(), `"version": 2`, `"version": 99`, 1)
	_, err := Decode(strings.NewReader(doc))
	if err == nil {
		t.Fatal("version 99 accepted")
	}
	if !strings.Contains(err.Error(), "version 99") {
		t.Errorf("error %q does not name the offending version", err)
	}
}

// TestDecodeRejectsBadDocuments: malformed inputs fail with clear errors.
func TestDecodeRejectsBadDocuments(t *testing.T) {
	tests := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", "hello", "not a snapshot document"},
		{"wrong magic", `{"header":{"magic":"nope","version":2}}`, "bad magic"},
		{"no header", `{}`, "bad magic"},
		{"unknown field", `{"header":{"magic":"selfstab-snapshot","version":2},"blueprint":{"deploy":{"kind":"grid"}},"bogus":1}`, "decode"},
		{"bad deploy kind", `{"header":{"magic":"selfstab-snapshot","version":2},"blueprint":{"deploy":{"kind":"psychic"}}}`, "unknown deployment kind"},
		{"op beyond step", `{"header":{"magic":"selfstab-snapshot","version":2,"step":5},"blueprint":{"deploy":{"kind":"grid"}},"ops":[{"step":9,"kind":"compact"}]}`, "beyond the snapshot step"},
		{"ops out of order", `{"header":{"magic":"selfstab-snapshot","version":2,"step":5},"blueprint":{"deploy":{"kind":"grid"}},"ops":[{"step":4,"kind":"compact"},{"step":2,"kind":"compact"}]}`, "out of order"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tt.doc))
			if err == nil {
				t.Fatalf("Decode(%q) succeeded", tt.doc)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestEncodeRefusesForeignHeader: Encode never writes a document this
// build's Decode would reject.
func TestEncodeRefusesForeignHeader(t *testing.T) {
	s := goldenSnapshot()
	s.Header.Version = 3
	if err := s.Encode(&bytes.Buffer{}); err == nil {
		t.Error("foreign version encoded")
	}
	s = goldenSnapshot()
	s.Header.Magic = "nope"
	if err := s.Encode(&bytes.Buffer{}); err == nil {
		t.Error("foreign magic encoded")
	}
}
