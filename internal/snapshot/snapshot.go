// Package snapshot defines the versioned, deterministic serialization
// format behind Network.Snapshot and selfstab.Restore: a checkpoint of a
// live simulation that can be written to disk, shipped to another
// process, and replayed bit-identically.
//
// The format leans on the simulator's determinism contract instead of
// dumping raw memory. A world's trajectory is a pure function of three
// things: how it was constructed (the Blueprint — deployment shape plus
// every construction option, seed included), which external mutations
// were applied and when (the Ops journal — every public mutator call,
// stamped with the step count at which it ran), and how many steps have
// executed (Header.Step). Restoring therefore re-runs construction and
// replays the journal through the same op-apply chokepoint the live
// calls went through, which reconstructs every subsystem's private state
// — engine nodes, frontier and tiles, the unit-disk grid, traffic queues
// and ledgers, energy batteries, open churn episodes — exactly, because
// the replay IS the original execution. Internal randomness (churn
// schedules, lossy media, traffic workloads) needs no journaling: it is
// drawn from split streams of the master seed and reproduces by itself.
//
// The encoding is JSON with a fixed field order (Go marshals struct
// fields in declaration order), one document per snapshot, so snapshots
// are diffable, greppable and stable enough for golden-file tests. The
// header carries a magic string, the format version, the master seed and
// the step count; Decode rejects unknown magics and versions before
// touching the rest of the document, so format drift fails loudly
// instead of replaying garbage.
package snapshot

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Magic identifies a selfstab snapshot document.
const Magic = "selfstab-snapshot"

// Version is the current format version. Bump it when the meaning of an
// existing field changes or a field replay depends on is added; Decode
// refuses documents whose version differs so an old binary never
// misreplays a new snapshot (or vice versa).
//
// Version history:
//
//	1: initial format (blueprint + 15 op kinds).
//	2: adversarial workload plane — spawn_flows, scale_density,
//	   evict_nodes and set_defense op kinds, with the scale and defense
//	   payload fields replay depends on.
const Version = 2

// Deployment kinds: how the node positions were generated. They mirror
// the public constructors one to one.
const (
	DeployExplicit = "explicit" // NewNetwork: positions listed in Points
	DeployRandom   = "random"   // NewRandomNetwork: N uniform points
	DeployPoisson  = "poisson"  // NewPoissonNetwork: Poisson(Intensity)
	DeployHotspot  = "hotspot"  // NewHotspotNetwork: N points, Hotspots sites
	DeployGrid     = "grid"     // NewGridNetwork: Rows x Cols lattice
)

// Op kinds: one per public world mutator. Every mutation a Network
// accepts flows through one op-apply chokepoint that journals these, so
// the op log is complete by construction.
const (
	OpFaults         = "inject_faults"
	OpSetPositions   = "set_positions"
	OpAddNodes       = "add_nodes"
	OpRemoveNodes    = "remove_nodes"
	OpCrashNodes     = "crash_nodes"
	OpSleepNodes     = "sleep_nodes"
	OpWakeNodes      = "wake_nodes"
	OpAttachTraffic  = "attach_traffic"
	OpDetachTraffic  = "detach_traffic"
	OpAttachChurn    = "attach_churn"
	OpDetachChurn    = "detach_churn"
	OpAttachEnergy   = "attach_energy"
	OpDetachEnergy   = "detach_energy"
	OpCompact        = "compact"
	OpSetAutoCompact = "set_auto_compact"

	// Adversarial workload plane (format version 2). Flood flows are
	// journaled as explicit src→dst pairs resolved against the live
	// hierarchy at call time — replay needs no head lookup, exactly the
	// explicit-id pattern the regional lifecycle injections use.
	OpSpawnFlows   = "spawn_flows"   // append flows, no ledger reset
	OpScaleDensity = "scale_density" // byzantine density inflation
	OpEvictNodes   = "evict_nodes"   // density-plausibility eviction
	OpSetDefense   = "set_defense"   // traffic-plane defense knobs
)

// Point is a node position in region coordinates. JSON round-trips Go
// float64 values exactly (shortest representation that parses back to
// the same bits), so positions — and every other float in the format —
// survive encode/decode bit-identically.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Header opens every snapshot document.
type Header struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Seed is the master seed the world was constructed with (duplicated
	// from Blueprint.Options for at-a-glance inspection).
	Seed int64 `json:"seed"`
	// Step is the completed-step count at capture time: replay runs the
	// journal and steps until StepCount reaches this.
	Step int `json:"step"`
}

// Deployment records which constructor built the world and its
// parameters. Only the fields of the named Kind are meaningful.
type Deployment struct {
	Kind      string  `json:"kind"`
	N         int     `json:"n,omitempty"`         // random, hotspot
	Intensity float64 `json:"intensity,omitempty"` // poisson
	Hotspots  int     `json:"hotspots,omitempty"`  // hotspot
	Spread    float64 `json:"spread,omitempty"`    // hotspot
	Rows      int     `json:"rows,omitempty"`      // grid
	Cols      int     `json:"cols,omitempty"`      // grid
	Points    []Point `json:"points,omitempty"`    // explicit
}

// Options records every construction option, resolved (defaults filled
// in). Together with Deployment this is the Blueprint: rebuilding with
// the same options consumes the master seed's split streams in the same
// order, so the restored world starts bit-identical to the original's
// step zero.
type Options struct {
	Seed         int64   `json:"seed"`
	Range        float64 `json:"range"`
	DAG          bool    `json:"dag,omitempty"`
	Gamma        int64   `json:"gamma,omitempty"`
	Sticky       bool    `json:"sticky,omitempty"`
	Fusion       bool    `json:"fusion,omitempty"`
	Tau          float64 `json:"tau"`
	Slots        int     `json:"slots,omitempty"`
	CacheTTL     int     `json:"cache_ttl,omitempty"`
	Activation   float64 `json:"activation"`
	RowMajorIDs  bool    `json:"row_major_ids,omitempty"`
	IDs          []int64 `json:"ids,omitempty"`
	StableWindow int     `json:"stable_window"`
	Tiles        int     `json:"tiles,omitempty"`
}

// Blueprint is the construction recipe: deployment plus options.
type Blueprint struct {
	Deploy  Deployment `json:"deploy"`
	Options Options    `json:"options"`
}

// Flow is one traffic workload of an attach_traffic op, as given by the
// caller (hotspot workloads are journaled unexpanded: expansion draws
// from a split stream at apply time and reproduces on replay).
type Flow struct {
	Kind           string  `json:"kind"` // "cbr" or "poisson"
	SrcID          int64   `json:"src"`
	DstID          int64   `json:"dst"`
	Rate           float64 `json:"rate"`
	Start          int     `json:"start,omitempty"`
	Stop           int     `json:"stop,omitempty"`
	HotspotSources int     `json:"hotspot_sources,omitempty"`
}

// TrafficConfig mirrors selfstab.TrafficConfig for the journal.
type TrafficConfig struct {
	QueueCap   int    `json:"queue_cap,omitempty"`
	Discipline string `json:"discipline,omitempty"` // "droptail" or "drophead"
	Budget     int    `json:"budget,omitempty"`
	TTL        int    `json:"ttl,omitempty"`
	Flows      []Flow `json:"flows"`
}

// ChurnConfig mirrors selfstab.ChurnConfig for the journal.
type ChurnConfig struct {
	ArrivalRate   float64 `json:"arrival_rate,omitempty"`
	DepartureRate float64 `json:"departure_rate,omitempty"`
	CrashRate     float64 `json:"crash_rate,omitempty"`
	SleepRate     float64 `json:"sleep_rate,omitempty"`
	SleepSteps    int     `json:"sleep_steps,omitempty"`
	MinAlive      int     `json:"min_alive,omitempty"`
}

// EnergyConfig mirrors selfstab.EnergyConfig for the journal.
type EnergyConfig struct {
	Capacity       float64 `json:"capacity,omitempty"`
	IdleHeadCost   float64 `json:"idle_head_cost,omitempty"`
	IdleMemberCost float64 `json:"idle_member_cost,omitempty"`
	SleepCost      float64 `json:"sleep_cost,omitempty"`
	TxCost         float64 `json:"tx_cost,omitempty"`
	RxCost         float64 `json:"rx_cost,omitempty"`
	Rotation       bool    `json:"rotation,omitempty"`
	RotationLevels int     `json:"rotation_levels,omitempty"`
}

// DefenseConfig mirrors selfstab.DefenseConfig for the journal: the
// traffic-plane defense knobs a set_defense op installs.
type DefenseConfig struct {
	HeadTokens bool    `json:"head_tokens,omitempty"`
	HeadRate   float64 `json:"head_rate,omitempty"`
	HeadBurst  float64 `json:"head_burst,omitempty"`
	SourceCap  int     `json:"source_cap,omitempty"`
}

// Op is one journaled world mutation. Kind selects which payload fields
// are meaningful; Step is the completed-step count at which the op was
// applied (replay applies it after stepping to that count, before the
// next step).
type Op struct {
	Step    int            `json:"step"`
	Kind    string         `json:"kind"`
	Frac    float64        `json:"frac,omitempty"`   // inject_faults, set_auto_compact
	Points  []Point        `json:"points,omitempty"` // add_nodes, set_positions
	IDs     []int64        `json:"ids,omitempty"`    // remove/crash/sleep/wake_nodes
	Traffic *TrafficConfig `json:"traffic,omitempty"`
	Churn   *ChurnConfig   `json:"churn,omitempty"`
	Energy  *EnergyConfig  `json:"energy,omitempty"`
	Scale   float64        `json:"scale,omitempty"`   // scale_density
	Defense *DefenseConfig `json:"defense,omitempty"` // set_defense
}

// Snapshot is one checkpoint document.
type Snapshot struct {
	Header    Header    `json:"header"`
	Blueprint Blueprint `json:"blueprint"`
	Ops       []Op      `json:"ops"`
}

// New stamps a snapshot with the current header fields.
func New(bp Blueprint, ops []Op, step int) *Snapshot {
	return &Snapshot{
		Header:    Header{Magic: Magic, Version: Version, Seed: bp.Options.Seed, Step: step},
		Blueprint: bp,
		Ops:       ops,
	}
}

// Encode writes the snapshot as one indented JSON document. The output
// is deterministic: field order follows the struct declarations and
// floats use Go's shortest round-trippable form, so identical snapshots
// encode to identical bytes (the golden-file test pins this).
func (s *Snapshot) Encode(w io.Writer) error {
	if s.Header.Magic != Magic {
		return fmt.Errorf("snapshot: refusing to encode header with magic %q", s.Header.Magic)
	}
	if s.Header.Version != Version {
		return fmt.Errorf("snapshot: refusing to encode format version %d (this build writes %d)", s.Header.Version, Version)
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode parses one snapshot document, validating the header before
// trusting the body: a wrong magic or a version mismatch is a clear
// error naming both versions, never a silent misreplay.
func Decode(r io.Reader) (*Snapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	// Peek at the header alone first so a future-versioned document with
	// unknown body fields still produces the version error, not a parse
	// error.
	var head struct {
		Header Header `json:"header"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return nil, fmt.Errorf("snapshot: not a snapshot document: %w", err)
	}
	if head.Header.Magic != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (want %q)", head.Header.Magic, Magic)
	}
	if head.Header.Version != Version {
		return nil, fmt.Errorf("snapshot: format version %d not supported (this build reads version %d)", head.Header.Version, Version)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// validate applies the structural checks replay depends on.
func (s *Snapshot) validate() error {
	if s.Header.Step < 0 {
		return fmt.Errorf("snapshot: negative step %d", s.Header.Step)
	}
	switch s.Blueprint.Deploy.Kind {
	case DeployExplicit, DeployRandom, DeployPoisson, DeployHotspot, DeployGrid:
	default:
		return fmt.Errorf("snapshot: unknown deployment kind %q", s.Blueprint.Deploy.Kind)
	}
	prev := 0
	for i, op := range s.Ops {
		if op.Step < prev {
			return fmt.Errorf("snapshot: op %d (%s) at step %d after an op at step %d — journal out of order", i, op.Kind, op.Step, prev)
		}
		if op.Step > s.Header.Step {
			return fmt.Errorf("snapshot: op %d (%s) at step %d beyond the snapshot step %d", i, op.Kind, op.Step, s.Header.Step)
		}
		prev = op.Step
	}
	return nil
}
