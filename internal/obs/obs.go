// Package obs is the engine's instrumentation core: a Probe interface
// the step path reports into (phase boundaries, per-tile halo-merge
// spans, counter gauges) and a Collector sink that turns those reports
// into a lock-free ring of per-step records, Prometheus-ready phase
// histograms, and Chrome trace-event exports.
//
// The package is built around two contracts:
//
// Zero overhead when disabled. Every emission site in the engine is
// guarded by a nil-probe check, so a detached probe costs a handful of
// predicted branches per step — no allocations, no interface calls, no
// clock reads. The pin is enforced by the steady-state allocation tests
// and the bench.sh regression gate.
//
// Determinism (the obspure rule). Probe callbacks are pure observers:
// wall-clock reads live only inside the sink (this package), never in
// engine state, and a callback must not mutate the engine or feed any
// value — timing included — back into the simulation. All Probe methods
// return nothing, the engine core never calls a value-returning function
// of this package, and the obspure analyzer (internal/analyze) enforces
// both directions statically. Tracing on versus off is therefore
// bit-identical, pinned by the probe-determinism oracle tests.
package obs

// Phase identifies one phase of a Δ(τ) step. The engine brackets each
// phase with PhaseBegin/PhaseEnd; phases absent from a given step path
// (no churn hook, untiled, no data plane) are simply never emitted.
type Phase uint8

const (
	// PhaseChurn is the pre-step window: disruption-episode closing plus
	// the churn schedule's add/remove/crash/sleep/wake ops.
	PhaseChurn Phase = iota
	// PhaseFrame is outgoing-frame assembly (and, on the dense path,
	// radio delivery).
	PhaseFrame
	// PhaseHalo is the tiled worklist expansion plus the cross-tile halo
	// outbox merge (tiled path only; per-tile merge spans nest inside).
	PhaseHalo
	// PhaseIngest is neighbor-cache ingest plus the guarded assignments.
	PhaseIngest
	// PhaseTraffic is the packet data plane's post-guard phase.
	PhaseTraffic
	// PhaseEnergy is the battery model's post-traffic phase.
	PhaseEnergy
	// PhaseCompact is dead-slot compaction (runs between steps; its span
	// is attributed to the following step's record).
	PhaseCompact
	// NumPhases bounds dense per-phase arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"churn", "frame", "halo", "ingest", "traffic", "energy", "compact",
}

// String returns the phase's metric label.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Counter identifies one engine gauge or cumulative counter. Gauge
// counters report the current value each emission; cumulative counters
// report an additive contribution (the sink keeps the running total).
type Counter uint8

const (
	// CtrFrontier is the frontier worklist length at step entry (gauge).
	CtrFrontier Counter = iota
	// CtrExec is how many nodes the step actually examined (gauge).
	CtrExec
	// CtrDenseFallback counts saturated-frontier dense-scan fallbacks
	// (cumulative; the engine emits 1 per fallback step).
	CtrDenseFallback
	// CtrHaloCross counts cross-tile halo-outbox activations staged this
	// step (cumulative; the per-step value is also in the step record).
	CtrHaloCross
	// CtrCompactions counts dead-slot compactions (cumulative).
	CtrCompactions
	// CtrQueueOccupancy is the data plane's in-flight packet count at the
	// end of the traffic phase (gauge).
	CtrQueueOccupancy
	// CtrTrafficForwarded counts data-plane transmissions (cumulative;
	// the engine emits the per-step transmission count).
	CtrTrafficForwarded
	// CtrDepletions is the battery model's cumulative depletion count
	// (gauge: the energy engine reports its own running total).
	CtrDepletions
	// CtrAttacksInjected counts adversarial operations launched through
	// the attack plane — floods, byzantine density inflations, sybil
	// bursts (cumulative; one per attack call).
	CtrAttacksInjected
	// CtrByzantineEvictions counts nodes expelled by the density-
	// plausibility defense (cumulative; one per evicted node).
	CtrByzantineEvictions
	// CtrAdmissionRejects counts packets the traffic defenses refused —
	// per-head token-bucket admission drops plus per-source rate-limit
	// drops (cumulative; the data plane emits the per-step count).
	CtrAdmissionRejects
	// NumCounters bounds dense per-counter arrays.
	NumCounters
)

// counterInfo is the per-counter metadata the sink and the exporters
// share: the metric label and whether emissions accumulate.
var counterInfo = [NumCounters]struct {
	name       string
	cumulative bool
}{
	CtrFrontier:         {"frontier_len", false},
	CtrExec:             {"exec_len", false},
	CtrDenseFallback:    {"dense_fallbacks", true},
	CtrHaloCross:        {"halo_crossings", true},
	CtrCompactions:      {"compactions", true},
	CtrQueueOccupancy:   {"queue_occupancy", false},
	CtrTrafficForwarded: {"traffic_forwarded", true},
	CtrDepletions:       {"energy_depletions", false},

	CtrAttacksInjected:    {"attacks_injected", true},
	CtrByzantineEvictions: {"byzantine_evictions", true},
	CtrAdmissionRejects:   {"admission_rejects", true},
}

// String returns the counter's metric label.
func (c Counter) String() string {
	if int(c) < len(counterInfo) {
		return counterInfo[c].name
	}
	return "unknown"
}

// Cumulative reports whether emissions for c are additive contributions
// (true) or current-value gauges (false).
func (c Counter) Cumulative() bool {
	return int(c) < len(counterInfo) && counterInfo[c].cumulative
}

// Probe receives the engine's instrumentation stream. The engine calls
// it only when attached (nil-probe sites are skipped entirely), from the
// stepping goroutine — except TileSpanBegin/TileSpanEnd, which arrive
// from the tile worker that owns the named tile (at most one goroutine
// per tile at a time, with the engine's phase barrier ordering them
// before EndStep).
//
// Implementations must be pure observers (the obspure rule): no method
// returns a value, and no method may mutate engine state, call back into
// the engine packages, or write global state. Wall-clock reads belong
// here and only here.
type Probe interface {
	// BeginStep opens the record for the step about to execute; step is
	// the engine's completed-step count at entry.
	BeginStep(step int)
	// EndStep closes the record. step is the count after the step;
	// changed reports whether any shared variable moved.
	EndStep(step int, changed bool)
	// PhaseBegin and PhaseEnd bracket one phase of the current step.
	PhaseBegin(p Phase)
	PhaseEnd(p Phase)
	// TileSpanBegin and TileSpanEnd bracket one tile's slice of a
	// tile-parallel phase (the halo merge).
	TileSpanBegin(p Phase, tile int)
	TileSpanEnd(p Phase, tile int)
	// Counter reports v for c: the current value for gauge counters, an
	// additive contribution for cumulative ones.
	Counter(c Counter, v int64)
}
