package obs

import (
	"encoding/json"
	"io"
)

// traceEvent is one Chrome trace-event object (the "Trace Event Format"
// consumed by chrome://tracing and Perfetto). Timestamps and durations
// are microseconds; fractional values keep nanosecond phases visible.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the containing JSON object format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 1

// stepTid is the step loop's synthetic thread id; tile spans render on
// tileTidBase+tile so per-tile halo merges stack as parallel tracks.
const (
	stepTid     = 0
	tileTidBase = 1
)

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteTrace renders recs as Chrome trace-event JSON: one "step" span
// and nested phase spans per record on the step track, per-tile halo
// spans on their own tracks, and counter series as "C" events.
func WriteTrace(w io.Writer, recs []StepRecord) error {
	events := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: tracePid,
			Args: map[string]any{"name": "selfstab"}},
		{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: stepTid,
			Args: map[string]any{"name": "step"}},
	}
	tilesNamed := map[int]bool{}
	for _, r := range recs {
		events = append(events, traceEvent{
			Name: "step", Ph: "X", Ts: usec(r.BeginNs), Dur: usec(r.DurNs),
			Pid: tracePid, Tid: stepTid,
			Args: map[string]any{"step": r.Step, "changed": r.Changed},
		})
		for p := Phase(0); p < NumPhases; p++ {
			span := r.Phases[p]
			if !span.Ok {
				continue
			}
			events = append(events, traceEvent{
				Name: p.String(), Ph: "X",
				Ts: usec(span.BeginNs), Dur: usec(span.DurNs),
				Pid: tracePid, Tid: stepTid,
			})
		}
		for _, ts := range r.Tiles {
			tid := tileTidBase + ts.Tile
			if !tilesNamed[tid] {
				tilesNamed[tid] = true
				events = append(events, traceEvent{
					Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
					Args: map[string]any{"name": "tile " + itoa(ts.Tile)},
				})
			}
			events = append(events, traceEvent{
				Name: ts.Phase.String(), Ph: "X",
				Ts: usec(ts.BeginNs), Dur: usec(ts.DurNs),
				Pid: tracePid, Tid: tid,
			})
		}
		endTs := usec(r.BeginNs + r.DurNs)
		for ctr := Counter(0); ctr < NumCounters; ctr++ {
			if !r.CounterSeen[ctr] {
				continue
			}
			events = append(events, traceEvent{
				Name: ctr.String(), Ph: "C", Ts: endTs,
				Pid: tracePid, Tid: stepTid,
				Args: map[string]any{"value": r.Counters[ctr]},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteTrace exports the collector's most recent max records (0 or
// negative: the whole ring) as Chrome trace-event JSON.
func (c *Collector) WriteTrace(w io.Writer, max int) error {
	return WriteTrace(w, c.Recent(max))
}

// itoa is a minimal strconv.Itoa for small non-negative tile indices,
// keeping the exporter free of fmt.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
