package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// drive pushes one synthetic step through the collector.
func drive(c *Collector, step int, changed bool) {
	c.BeginStep(step - 1)
	c.Counter(CtrFrontier, int64(step))
	c.PhaseBegin(PhaseFrame)
	c.PhaseEnd(PhaseFrame)
	c.PhaseBegin(PhaseIngest)
	c.PhaseEnd(PhaseIngest)
	c.Counter(CtrTrafficForwarded, 3)
	c.EndStep(step, changed)
}

func TestCollectorRecords(t *testing.T) {
	c := NewCollector(8)
	drive(c, 1, true)
	drive(c, 2, false)

	recs := c.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("want 2 records, got %d", len(recs))
	}
	r := recs[0]
	if r.Step != 1 || !r.Changed {
		t.Errorf("record 0: step=%d changed=%v, want 1/true", r.Step, r.Changed)
	}
	if !r.Phases[PhaseFrame].Ok || !r.Phases[PhaseIngest].Ok {
		t.Errorf("frame/ingest phases not recorded: %+v", r.Phases)
	}
	if r.Phases[PhaseChurn].Ok {
		t.Errorf("churn phase recorded but never emitted")
	}
	if r.Phases[PhaseFrame].DurNs < 0 {
		t.Errorf("negative frame duration %d", r.Phases[PhaseFrame].DurNs)
	}
	if !r.CounterSeen[CtrFrontier] || r.Counters[CtrFrontier] != 1 {
		t.Errorf("frontier gauge: seen=%v v=%d", r.CounterSeen[CtrFrontier], r.Counters[CtrFrontier])
	}
	if recs[1].Counters[CtrFrontier] != 2 {
		t.Errorf("gauge must not accumulate across steps: got %d", recs[1].Counters[CtrFrontier])
	}
	if recs[1].Seq != 1 {
		t.Errorf("seq: got %d, want 1", recs[1].Seq)
	}

	m := c.Metrics()
	if m.Steps != 2 {
		t.Errorf("Steps=%d, want 2", m.Steps)
	}
	if m.Counters[CtrTrafficForwarded] != 6 {
		t.Errorf("cumulative forwarded total: got %d, want 6", m.Counters[CtrTrafficForwarded])
	}
	if m.Counters[CtrFrontier] != 2 {
		t.Errorf("gauge total holds last value: got %d, want 2", m.Counters[CtrFrontier])
	}
	if m.Phases[PhaseFrame].Count != 2 || m.Phases[PhaseChurn].Count != 0 {
		t.Errorf("phase histogram counts: frame=%d churn=%d", m.Phases[PhaseFrame].Count, m.Phases[PhaseChurn].Count)
	}
	if m.Step.Count != 2 {
		t.Errorf("step histogram count: got %d, want 2", m.Step.Count)
	}
	var sum int64
	for _, n := range m.Step.Counts {
		sum += n
	}
	if sum != m.Step.Count {
		t.Errorf("bucket counts sum %d != observation count %d", sum, m.Step.Count)
	}
}

func TestCollectorRingWraparound(t *testing.T) {
	c := NewCollector(4)
	for s := 1; s <= 10; s++ {
		drive(c, s, true)
	}
	recs := c.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("want ring-size 4 records, got %d", len(recs))
	}
	for i, r := range recs {
		if want := 7 + i; r.Step != want {
			t.Errorf("record %d: step=%d, want %d", i, r.Step, want)
		}
	}
	if got := c.Recent(2); len(got) != 2 || got[1].Step != 10 {
		t.Errorf("Recent(2): %+v", got)
	}
	if c.Metrics().Steps != 10 {
		t.Errorf("Steps=%d, want 10", c.Metrics().Steps)
	}
}

// TestCollectorTileSpans exercises the per-tile slots from concurrent
// goroutines, mirroring the engine's one-goroutine-per-tile contract.
func TestCollectorTileSpans(t *testing.T) {
	c := NewCollector(4)
	c.BeginStep(0)
	var wg sync.WaitGroup
	const tiles = 5
	for d := 0; d < tiles; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			c.TileSpanBegin(PhaseHalo, d)
			c.TileSpanEnd(PhaseHalo, d)
		}(d)
	}
	wg.Wait()
	c.EndStep(1, true)

	recs := c.Recent(1)
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	if len(recs[0].Tiles) != tiles {
		t.Fatalf("want %d tile spans, got %d", tiles, len(recs[0].Tiles))
	}
	seen := map[int]bool{}
	for _, ts := range recs[0].Tiles {
		if ts.Phase != PhaseHalo {
			t.Errorf("tile %d: phase %v, want halo", ts.Tile, ts.Phase)
		}
		seen[ts.Tile] = true
	}
	for d := 0; d < tiles; d++ {
		if !seen[d] {
			t.Errorf("tile %d span missing", d)
		}
	}

	// Slots must be reset: next step has no tile spans.
	drive(c, 2, false)
	if recs := c.Recent(1); len(recs[0].Tiles) != 0 {
		t.Errorf("tile slots leaked into next step: %+v", recs[0].Tiles)
	}

	// Out-of-range tiles are ignored, not a panic or corruption.
	c.TileSpanBegin(PhaseHalo, maxTileSlots+3)
	c.TileSpanEnd(PhaseHalo, maxTileSlots+3)
	c.TileSpanBegin(PhaseHalo, -1)
	c.TileSpanEnd(PhaseHalo, -1)
}

// TestCollectorConcurrentReaders hammers Metrics/Recent from readers
// while the writer laps the ring; run under -race this pins the
// lock-free publication protocol.
func TestCollectorConcurrentReaders(t *testing.T) {
	c := NewCollector(8)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, rec := range c.Recent(0) {
					if rec.Step != int(rec.Seq)+1 {
						t.Errorf("torn record: step=%d seq=%d", rec.Step, rec.Seq)
						return
					}
				}
				c.Metrics()
			}
		}()
	}
	for s := 1; s <= 2000; s++ {
		drive(c, s, true)
	}
	close(done)
	wg.Wait()
}

func TestWriteTrace(t *testing.T) {
	c := NewCollector(8)
	drive(c, 1, true)
	c.BeginStep(1)
	c.TileSpanBegin(PhaseHalo, 0)
	c.TileSpanEnd(PhaseHalo, 0)
	c.TileSpanBegin(PhaseHalo, 1)
	c.TileSpanEnd(PhaseHalo, 1)
	c.Counter(CtrHaloCross, 4)
	c.EndStep(2, true)

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf, 0); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	counts := map[string]int{}
	tileTids := map[int]bool{}
	for _, ev := range tf.TraceEvents {
		counts[ev.Ph+":"+ev.Name]++
		if ev.Ph == "X" && ev.Name == "halo" {
			tileTids[ev.Tid] = true
		}
	}
	if counts["X:step"] != 2 {
		t.Errorf("want 2 step spans, got %d", counts["X:step"])
	}
	if counts["X:frame"] != 1 || counts["X:ingest"] != 1 {
		t.Errorf("phase spans: %v", counts)
	}
	if counts["X:halo"] != 2 || len(tileTids) != 2 {
		t.Errorf("want 2 halo tile spans on distinct tids, got %d spans on %d tids", counts["X:halo"], len(tileTids))
	}
	if counts["C:halo_crossings"] != 1 || counts["C:frontier_len"] != 1 {
		t.Errorf("counter events: %v", counts)
	}
	if counts["M:process_name"] != 1 || counts["M:thread_name"] != 3 {
		t.Errorf("metadata events: %v", counts)
	}
}

func TestPhaseCounterStrings(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == "" || p.String() == "unknown" {
			t.Errorf("phase %d has no name", p)
		}
	}
	if Phase(250).String() != "unknown" {
		t.Errorf("out-of-range phase name: %q", Phase(250).String())
	}
	seen := map[string]bool{}
	for ctr := Counter(0); ctr < NumCounters; ctr++ {
		n := ctr.String()
		if n == "" || n == "unknown" {
			t.Errorf("counter %d has no name", ctr)
		}
		if seen[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
	if Counter(250).String() != "unknown" || Counter(250).Cumulative() {
		t.Errorf("out-of-range counter metadata")
	}
	if !CtrHaloCross.Cumulative() || CtrFrontier.Cumulative() {
		t.Errorf("cumulative flags wrong")
	}
}
