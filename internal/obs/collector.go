package obs

import (
	"sync/atomic"
	"time"
)

// maxTileSlots bounds the per-tile span scratch. Tiles beyond the bound
// are still merged correctly by the engine; only their spans go
// unrecorded. Auto-tiling picks min(GOMAXPROCS, N/2048) tiles, so real
// configurations sit far below this.
const maxTileSlots = 256

// PhaseSpan is one phase's slice of a step. BeginNs is relative to the
// Collector's construction instant (monotonic).
type PhaseSpan struct {
	BeginNs int64
	DurNs   int64
	Ok      bool // the phase was emitted this step
}

// TileSpan is one tile's slice of a tile-parallel phase.
type TileSpan struct {
	Phase   Phase
	Tile    int
	BeginNs int64
	DurNs   int64
}

// StepRecord is the complete observation of one Δ(τ) step.
type StepRecord struct {
	Seq     uint64 // publication index (monotonic across the run)
	Step    int    // the engine's completed-step count after the step
	BeginNs int64  // step start, relative to the Collector epoch
	DurNs   int64
	Changed bool // any shared variable moved

	Phases      [NumPhases]PhaseSpan
	Counters    [NumCounters]int64 // per-step value (gauges: last emitted; cumulative: this step's sum)
	CounterSeen [NumCounters]bool
	Tiles       []TileSpan // per-tile halo-merge spans (tiled steps only)
}

// histBoundsNs are the histogram bucket upper bounds in nanoseconds
// (an implicit +Inf bucket follows): 1µs to 1s, wide enough to span a
// quiescent 10ns step and a million-node perturbed one.
const numHistBounds = 17

var histBoundsNs = [numHistBounds]int64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000, 100_000_000, 1_000_000_000,
}

// hist is a fixed-bucket latency histogram with atomic cells, so the
// metrics endpoint can read it while the step loop writes.
type hist struct {
	counts [numHistBounds + 1]atomic.Int64
	sumNs  atomic.Int64
	n      atomic.Int64
}

func (h *hist) observe(ns int64) {
	i := 0
	for i < len(histBoundsNs) && ns > histBoundsNs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
	h.n.Add(1)
}

// Histogram is a point-in-time copy of one latency histogram. Counts has
// one entry per bound plus the +Inf bucket.
type Histogram struct {
	BoundsNs []int64
	Counts   []int64
	SumNs    int64
	Count    int64
}

func (h *hist) snapshot() Histogram {
	out := Histogram{
		BoundsNs: histBoundsNs[:],
		Counts:   make([]int64, numHistBounds+1),
		SumNs:    h.sumNs.Load(),
		Count:    h.n.Load(),
	}
	for i := range out.Counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// Metrics is the Collector's aggregate view, shaped for Prometheus
// exposition: per-phase and whole-step duration histograms plus the
// counter gauges/totals.
type Metrics struct {
	Steps    uint64 // records published
	Step     Histogram
	Phases   [NumPhases]Histogram
	Counters [NumCounters]int64
}

// Collector is the default Probe sink: it assembles one StepRecord per
// step and publishes finished records into a lock-free ring (atomic
// pointer slots plus an atomic cursor — the step loop never takes a
// lock), while folding durations into atomic histograms.
//
// Writer side: the engine's stepping goroutine, plus tile workers for
// TileSpan calls (one goroutine per tile, ordered before EndStep by the
// engine's phase barrier). Reader side: any goroutine, via Metrics and
// Recent — readers validate each slot's Seq, so a concurrent overwrite
// skips the slot instead of yielding a torn record.
type Collector struct {
	epoch  time.Time
	ring   []atomic.Pointer[StepRecord]
	cursor atomic.Uint64

	// Current-step scratch (stepping goroutine only, except the tile
	// slot arrays, which are written one-goroutine-per-tile).
	cur       StepRecord
	stepBegin int64
	phaseBeg  [NumPhases]int64
	tileBeg   [maxTileSlots]int64
	tileDur   [maxTileSlots]int64
	tilePh    [maxTileSlots]Phase

	stepHist  hist
	phaseHist [NumPhases]hist
	totals    [NumCounters]atomic.Int64
}

var _ Probe = (*Collector)(nil)

// NewCollector builds a collector retaining the most recent ringSize
// step records (default 512 when <= 0).
func NewCollector(ringSize int) *Collector {
	if ringSize <= 0 {
		ringSize = 512
	}
	return &Collector{
		epoch: time.Now(),
		ring:  make([]atomic.Pointer[StepRecord], ringSize),
	}
}

func (c *Collector) nowNs() int64 { return int64(time.Since(c.epoch)) }

// BeginStep implements Probe.
func (c *Collector) BeginStep(step int) {
	c.stepBegin = c.nowNs()
	c.cur.Step = step
}

// PhaseBegin implements Probe.
func (c *Collector) PhaseBegin(p Phase) {
	if p < NumPhases {
		c.phaseBeg[p] = c.nowNs()
	}
}

// PhaseEnd implements Probe.
func (c *Collector) PhaseEnd(p Phase) {
	if p >= NumPhases {
		return
	}
	now := c.nowNs()
	d := now - c.phaseBeg[p]
	c.cur.Phases[p] = PhaseSpan{BeginNs: c.phaseBeg[p], DurNs: d, Ok: true}
	c.phaseHist[p].observe(d)
}

// TileSpanBegin implements Probe. Safe from tile workers: each tile owns
// its own slot.
func (c *Collector) TileSpanBegin(p Phase, tile int) {
	if tile >= 0 && tile < maxTileSlots {
		c.tileBeg[tile] = c.nowNs()
		c.tilePh[tile] = p
	}
}

// TileSpanEnd implements Probe.
func (c *Collector) TileSpanEnd(_ Phase, tile int) {
	if tile >= 0 && tile < maxTileSlots {
		c.tileDur[tile] = c.nowNs() - c.tileBeg[tile]
	}
}

// Counter implements Probe.
func (c *Collector) Counter(ctr Counter, v int64) {
	if ctr >= NumCounters {
		return
	}
	if ctr.Cumulative() {
		c.totals[ctr].Add(v)
		c.cur.Counters[ctr] += v
	} else {
		c.totals[ctr].Store(v)
		c.cur.Counters[ctr] = v
	}
	c.cur.CounterSeen[ctr] = true
}

// EndStep implements Probe: the assembled record is published into the
// ring and the scratch reset for the next step.
func (c *Collector) EndStep(step int, changed bool) {
	now := c.nowNs()
	c.cur.Step = step
	c.cur.Changed = changed
	c.cur.BeginNs = c.stepBegin
	c.cur.DurNs = now - c.stepBegin
	for t := 0; t < maxTileSlots; t++ {
		if c.tileBeg[t] == 0 && c.tileDur[t] == 0 {
			continue
		}
		c.cur.Tiles = append(c.cur.Tiles, TileSpan{
			Phase: c.tilePh[t], Tile: t, BeginNs: c.tileBeg[t], DurNs: c.tileDur[t],
		})
		c.tileBeg[t], c.tileDur[t] = 0, 0
	}
	c.stepHist.observe(c.cur.DurNs)

	seq := c.cursor.Load()
	rec := new(StepRecord)
	*rec = c.cur
	rec.Seq = seq
	c.ring[seq%uint64(len(c.ring))].Store(rec)
	c.cursor.Add(1)
	c.cur = StepRecord{} // drop the published Tiles slice; records own theirs
}

// Metrics returns the aggregate histograms and counters.
func (c *Collector) Metrics() Metrics {
	m := Metrics{
		Steps: c.cursor.Load(),
		Step:  c.stepHist.snapshot(),
	}
	for p := Phase(0); p < NumPhases; p++ {
		m.Phases[p] = c.phaseHist[p].snapshot()
	}
	for ctr := Counter(0); ctr < NumCounters; ctr++ {
		m.Counters[ctr] = c.totals[ctr].Load()
	}
	return m
}

// Recent returns up to max of the most recently published step records,
// oldest first (0 or negative: the whole ring). Slots overwritten while
// reading are skipped, never torn.
func (c *Collector) Recent(max int) []StepRecord {
	n := c.cursor.Load()
	size := uint64(len(c.ring))
	if max <= 0 || uint64(max) > size {
		max = int(size)
	}
	from := uint64(0)
	if n > uint64(max) {
		from = n - uint64(max)
	}
	out := make([]StepRecord, 0, n-from)
	for i := from; i < n; i++ {
		rec := c.ring[i%size].Load()
		if rec == nil || rec.Seq != i {
			continue // lapped by the writer mid-read
		}
		out = append(out, *rec)
	}
	return out
}
