// Package selfstab is a library reproduction of "Self-stabilization in
// self-organized Multihop Wireless Networks" (Mitton, Fleury, Guérin
// Lassous, Tixeuil — ICDCS 2005 / INRIA RR-5426): self-stabilizing,
// density-driven clustering for multihop wireless networks.
//
// A Network simulates wireless nodes running the paper's protocol stack:
// neighbor discovery by periodic local broadcast, the density metric
// (links/nodes over the closed 1-neighborhood), cluster-head election by
// the total order ≺ (density first, identifier tie-break), the
// constant-height DAG color space that makes stabilization time
// independent of network diameter, and the stability improvements of
// Section 4.3 (incumbent-head stickiness and 2-hop cluster fusion).
//
// The protocol is self-stabilizing: start it in any state — or corrupt a
// running network with InjectFaults — and it converges back to a
// legitimate clustering. Time advances in the paper's Δ(τ) steps via Step
// or Stabilize.
//
// The clustering exists to make hierarchical routing scale, and the
// simulator closes that loop: Route answers path queries over the live
// clustering, and AttachTraffic installs a packet-level data plane — CBR,
// Poisson and many-to-one hotspot flows, per-node bounded queues, cached
// hierarchical forwarding — whose TrafficStats ledger reports delivery
// ratio, path stretch versus flat shortest paths, latency percentiles and
// the per-node load concentration the hierarchy creates on heads and
// gateways.
//
// The population itself is dynamic: AddNodes, RemoveNodes, CrashNodes,
// SleepNodes and WakeNodes change the node set at runtime, and
// AttachChurn drives a seeded schedule of Poisson arrivals, departures,
// crashes and duty-cycling as a pre-step phase of the same loop. Every
// disruption is tracked in the convergence ledger (ConvergenceStats):
// steps until the network re-stabilized and how far the change spread in
// hops — the paper's self-stabilization and locality claims, measured
// per event. The traffic plane survives churn: packets addressed to dead
// or sleeping endpoints become accounted DropsDeadEndpoint drops. Under
// sustained add/remove churn, Compact (or a SetAutoCompact threshold)
// recycles the index slots of departed nodes so live memory tracks the
// operating population instead of cumulative arrivals.
//
// Energy closes the loop (AttachEnergy): every node carries a battery
// drained per step by its role (cluster-heads idle hotter than members),
// by the data plane's per-packet tx/rx activity and by duty-cycling
// (sleeping is cheap — SleepNodes saves real energy). A depleted battery
// kills its node through the churn machinery, so lifetime is measurable
// end to end: load drains batteries, depletion is a departure episode in
// the convergence ledger, and EnergyStats reports first-death step and
// the per-cause drain breakdown. Energy-aware head rotation
// (EnergyConfig.Rotation) scales each node's shared density by its
// quantized remaining charge, demoting draining heads online — the
// paper's Section 6 future work running live, with Verify checking the
// correspondingly weighted oracle.
//
// The robustness claim is tested under adversaries, not just benign
// churn: the adversarial workload plane mounts botnet CBR floods against
// the current cluster-heads (FloodHeads), byzantine density inflation
// that captures headship through the honest ≺ election (InflateDensity),
// and sybil join bursts packed around a victim (SybilJoin). The defenses
// are measurable rather than rhetorical — SetTrafficDefense installs
// per-head token-bucket admission control and per-source rate limiting
// whose refusals are first-class drop reasons in the traffic ledger
// (DropsAdmission, DropsRateLimit), and ImplausibleNodes/EvictNodes
// detect and expel density liars via a structural bound (a degree-d
// node's true density cannot exceed (d+1)/2), with each eviction's cost
// opening a ChurnAttack episode in the convergence ledger. Attack and
// defense ops are journaled like any other mutation, so an attacked
// world snapshots and replays bit-identically; internal/attack runs the
// seeded twin-world comparison (selfstab-sim attack) that scores each
// defense as an undefended-vs-defended delta.
//
// A world is checkpointable: every public mutation flows through a
// single op-apply chokepoint and is journaled, so WriteSnapshot emits a
// versioned document (internal/snapshot) — the construction blueprint
// (deployment + options, seed included) plus the step-stamped op journal
// — and ReadSnapshot rebuilds through the same constructor path,
// replaying the journal interleaved with stepping, to a bit-identical
// world: states, clusters and every ledger, at any worker count, flat or
// tiled. Internal randomness (churn schedules, traffic workloads)
// reproduces from the seed's split streams and is not journaled. The
// internal/serve package runs a Network as a long-lived service stepping
// in scaled real time behind an HTTP/JSON API (selfstab-sim serve).
//
// The world is observable without being perturbable: AttachProbe installs
// an obs.Probe that receives step boundaries, per-phase and per-tile
// spans, and engine counters from inside the step path. The probe
// contract has two halves, both enforced. With no probe attached the
// instrumentation costs nothing — the nil-probe path adds zero
// allocations and no measurable time (pinned by test and benchmark
// gate). With one attached, the engine is write-only toward it and the
// probe must never feed back: callbacks may not call into engine
// packages or mutate engine state (the obspure analyzer checks this
// statically), so a traced run is bit-identical to an untraced twin.
// Probe attachment is deliberately not journaled — replay without the
// probe reproduces the same trajectory. NewCollector's lock-free sink
// aggregates records into Prometheus-style histograms (served at
// /metrics) and Chrome trace-event JSON (WriteTrace, selfstab-sim
// trace, POST /trace).
//
// Minimal use:
//
//	net, err := selfstab.NewPoissonNetwork(1000, selfstab.WithRange(0.1))
//	if err != nil { ... }
//	if _, err := net.Stabilize(1000); err != nil { ... }
//	for _, c := range net.Clusters() {
//		fmt.Println(c.HeadID, len(c.Members))
//	}
//
// # Performance
//
// The simulation hot path is engineered so that per-step cost tracks the
// amount of protocol activity, not the network size times allocator
// pressure:
//
//   - Frontier (worklist) stepping. The protocol is locally quiescent
//     after stabilization: a node's guards can only produce new output
//     when its own variables or its neighbor cache changed. The engine
//     therefore keeps a worklist — seeded by guard firings, churn
//     transitions, corruption, density-scale writes and incremental
//     topology deltas (the grid index reports exactly the nodes whose
//     adjacency an update touched) — and each step examines only
//     worklist nodes plus the radio neighborhoods of nodes about to
//     broadcast changed content. A stabilized network steps in O(1)
//     flat in N (BenchmarkQuiescentStep: ~9 ns at 1k, 10k and 100k
//     nodes, 0 allocs/op) instead of the full scan's O(N)
//     (BenchmarkQuiescentStepDense1k: ~0.6 ms at 1k alone); a locally
//     perturbed network steps in O(frontier × density)
//     (BenchmarkStep100k). The execution is bit-identical to the full
//     scan — pinned by randomized mixed-trace oracles at 1 and 4
//     workers under -race — and engages automatically on a lossless
//     medium with a synchronous daemon (lossy media and randomized
//     daemons draw per-node randomness every step, so they keep the
//     dense path).
//
//   - Spatially-tiled sharded stepping (WithTiles). The deployment
//     region is partitioned into k rectangular tiles, each owning its
//     nodes and its shard of the frontier worklist. A step expands and
//     evaluates each tile independently on the worker pool; activations
//     that cross a tile boundary are routed through per-(source, dest)
//     outboxes and merged at a step barrier — a halo exchange. Because
//     the radio is a unit disk, only nodes within one radio range of a
//     boundary can generate cross-tile traffic, so halo volume scales
//     with tile perimeter while per-tile work scales with area. Tiling
//     is purely a performance knob: per-node writes touch only that
//     node's state and merge order is fixed, so the trajectory is
//     bit-identical at any tile count and worker count (pinned by
//     TestTiledMatchesFlatMixedTrace and the public-layer
//     TestTilesOracleMixedTrace, both under -race). At one worker the
//     tiled path costs the same as the flat worklist
//     (BenchmarkStep100kTiles shows parity across the sweep on a
//     single-core host); on multicore the per-tile phases spread across
//     the pool and the step scales with min(tiles, cores). The default
//     is automatic — min(GOMAXPROCS, N/2048) tiles.
//
//   - Saturated-frontier fallback. When a disruption pends half the
//     population or more (mass corruption, a blackout, ActivateAll),
//     worklist bookkeeping costs more than it saves: the engine detects
//     2·|frontier| ≥ alive before dispatch and runs that step as a flat
//     index-order scan with sparse per-node operations, rebuilding the
//     worklist on the way out (BenchmarkStepSaturated pins the regime).
//
//   - Interned neighbor summaries. A published neighbor-summary list is
//     immutable: frame assembly reuses the previously published slice
//     when the cache content is unchanged, and receivers cache the list
//     by reference instead of copying it. Steady-state per-node memory
//     drops from O(degree²) (every receiver holding a private copy of
//     every neighbor's list) to O(degree), which is what keeps the
//     million-node scenario (BenchmarkStep1M) inside a commodity heap.
//
//   - O(log N) churn victim selection and O(1) population counts. A
//     Fenwick-tree order-statistic index over the alive set backs the
//     churn schedule's random victim picks (NthAlive) and Population,
//     replacing O(N) status scans that dominated large quiescent worlds.
//     compactions; an explicit Network.Compact (or a SetAutoCompact
//     dead-fraction threshold) recycles dead slots under one monotone
//     index remap propagated to every index cache — grid and graph,
//     engine arrays, traffic queues and flow endpoints, energy arrays,
//     the open convergence episode — so long-running churn simulations
//     hold memory proportional to the operating population. Because
//     survivors keep their relative order, every ledger is bit-identical
//     to a run that never compacted (pinned by a twin-run oracle);
//     BenchmarkCompact measures the remap at 10k nodes with 20% dead.
//
//   - Typed flat delivery. The radio layer never boxes frames: a medium
//     only decides which (sender, receiver) pairs deliver and records
//     them in a CSR-style flat inbox (one offsets array, one sender-index
//     array, both reused every step). The engine keeps exactly one typed
//     outgoing frame per node in a reusable arena, so a steady-state step
//     performs O(1) amortized allocations instead of O(edges).
//
//   - Per-node neighbor caches are flat, id-sorted entry slices. Frame
//     assembly walks them in order (no sort, no hashing), the density
//     rule (R1) counts 2-hop links with merge scans over the sorted
//     lists, and a cache refresh that does not change any advertised
//     value is a single comparison with no copy.
//
//   - Guard skipping via dirty tracking. The guarded assignments N1, R1
//     and R2 are deterministic functions of a node's cache and its own
//     shared variables. Each node tracks whether those inputs changed;
//     clean nodes skip guard evaluation entirely, so a stabilized
//     network steps in time proportional to delivered frames. The same
//     tracking lets Stabilize detect quiescence without snapshotting
//     state each step.
//
//   - Parallel phases. Frame assembly and ingest+guards are per-node
//     independent and run on a GOMAXPROCS-sized worker pool. Randomness
//     that must stay ordered (medium losses, daemon scheduling) is drawn
//     sequentially between the parallel phases, and per-node draws (DAG
//     colors) come from per-node streams, so results are bit-identical
//     for a fixed seed at any parallelism — the determinism test in
//     internal/runtime pins this.
//
//   - Incremental topology under mobility and churn. SetPositions keeps
//     a dense uniform grid index (topology.GridIndex) alive across calls
//     and recomputes only moved nodes' cells and edges rather than
//     rebuilding the unit-disk graph, allocation-free at steady state.
//     Node churn uses the same index incrementally: Append wires a new
//     node's edges in O(local density), Deactivate/Reactivate detach and
//     reattach a slot's edges with their capacity retained, so the churn
//     pre-step phase allocates nothing at steady state for
//     crash/sleep/wake churn (pinned by TestChurnPreStepAllocationFree;
//     BenchmarkChurnStep1000 measures a 1000-node step under ~1%/step
//     churn). Per-source flat-distance rows for the traffic stretch
//     baseline are memoized per topology epoch — one BFS per source per
//     topology change, not one per flow.
//
//   - Epoch-cached routing tables. The hierarchical table behind Route,
//     RoutingState and the traffic data plane is rebuilt only when the
//     engine's epoch moved (a state-changing step, fault injection, a
//     topology swap); the flat table only when the topology itself moved.
//     A route query on a quiescent network is a pure table walk —
//     BenchmarkRouteCached vs BenchmarkRouteRebuild measures roughly
//     three orders of magnitude between the two.
//
//   - An O(1)-amortized traffic phase. The data plane attached by
//     AttachTraffic runs as a post-guard phase of the same step loop:
//     packets live in fixed-capacity per-node rings, one-hop moves are
//     staged in reused buffers, forwarding walks the cached tables via
//     the allocation-free NextHop primitive, and latencies accumulate in
//     a histogram that only grows to the maximum observed value. All
//     workload randomness is drawn sequentially from a dedicated stream,
//     so traffic statistics — like the protocol itself — are bit-identical
//     for a fixed seed at any parallelism (pinned by TestTrafficDeterminism).
//     BenchmarkTrafficStep1000 (1000 nodes, 100+ flows) adds zero
//     steady-state allocations over the bare protocol step.
//
//   - An allocation-free energy phase. The battery model attached by
//     AttachEnergy runs after the traffic phase of the same step: one
//     sequential pass over preallocated per-node arrays charges role idle
//     costs and per-packet tx/rx deltas read straight off the data
//     plane's counters (no copies), and rotation updates the engine's
//     density scales only at quantized level crossings. The pass
//     allocates nothing at steady state (TestEnergyPhaseAllocationFree)
//     and its ledger is bit-identical at any worker count
//     (TestEnergyDeterminism); BenchmarkEnergyStep1000 measures the full
//     step with convergecast traffic and rotation enabled.
//
// The benchmark suite quantifies all of this: BenchmarkStep1000 (steady
// protocol step at paper scale) is the headline throughput number and
// should stay allocation-flat; the BenchmarkQuiescentStep family and
// BenchmarkStep100k pin the frontier engine's flat-in-N claim, the
// BenchmarkStep100kTiles sweep and BenchmarkStep1M pin the tiled
// engine's scaling and the million-node memory budget;
// BenchmarkColdStabilize and BenchmarkRecovery measure convergence
// phases where guards actually run; the experiment-level benchmarks in
// bench_test.go regenerate the paper's tables. scripts/bench.sh runs
// the core suites, emits BENCH_step.json, BENCH_traffic.json,
// BENCH_churn.json, BENCH_energy.json and BENCH_scale.json for the
// performance trajectory, and gates on >20% step-time regressions
// against the committed baselines (scripts/benchgate).
package selfstab

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"

	"selfstab/internal/cluster"
	"selfstab/internal/deploy"
	"selfstab/internal/energy"
	"selfstab/internal/geom"
	"selfstab/internal/obs"
	"selfstab/internal/radio"
	"selfstab/internal/rng"
	"selfstab/internal/routing"
	"selfstab/internal/runtime"
	"selfstab/internal/snapshot"
	"selfstab/internal/topology"
	"selfstab/internal/traffic"
)

// Point is a node position in the deployment region (the unit square by
// default; 1 unit = 1 km at the paper's scale).
type Point struct {
	X, Y float64
}

// config collects the functional options.
type config struct {
	seed         int64
	radioRng     float64
	useDag       bool
	gamma        int64 // 0 = auto (delta^2)
	sticky       bool
	fusion       bool
	tau          float64
	slots        int
	cacheTTL     int
	activation   float64
	rowMajor     bool
	idsCustom    []int64
	stableWindow int
	tiles        int // 0 = auto, 1 = untiled, k > 1 = force k tiles
}

func defaults() config {
	return config{
		seed:         1,
		radioRng:     0.1,
		tau:          1,
		activation:   1,
		stableWindow: 5,
	}
}

// Option customizes a Network at construction.
type Option func(*config) error

// WithSeed fixes the random seed; identical seeds reproduce identical
// networks and protocol executions.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithRange sets the radio transmission range in region units (the paper
// sweeps 0.05-0.1). Default 0.1.
func WithRange(r float64) Option {
	return func(c *config) error {
		if r <= 0 || r > 1 {
			return fmt.Errorf("selfstab: range must be in (0, 1], got %v", r)
		}
		c.radioRng = r
		return nil
	}
}

// WithDAG enables the constant-height DAG construction (Algorithm N1):
// metric ties break on small locally-unique colors instead of global
// identifiers, bounding stabilization time by a constant independent of
// the network diameter. gamma is the color-space size; pass 0 to use the
// paper's simulation choice delta².
func WithDAG(gamma int64) Option {
	return func(c *config) error {
		if gamma < 0 {
			return fmt.Errorf("selfstab: negative gamma %d", gamma)
		}
		c.useDag = true
		c.gamma = gamma
		return nil
	}
}

// WithStickyHeads enables the Section 4.3 incumbency rule: on density
// ties a standing cluster-head wins over a challenger.
func WithStickyHeads() Option {
	return func(c *config) error {
		c.sticky = true
		return nil
	}
}

// WithFusion enables the Section 4.3 fusion rule: of two cluster-heads
// within two hops the ≺-lesser dissolves its cluster into the greater's,
// guaranteeing heads are at least three hops apart.
func WithFusion() Option {
	return func(c *config) error {
		c.fusion = true
		return nil
	}
}

// WithTau sets the per-link frame delivery probability of the radio medium
// (the paper's CSMA/CA abstraction). Default 1 (lossless).
func WithTau(tau float64) Option {
	return func(c *config) error {
		if tau <= 0 || tau > 1 {
			return fmt.Errorf("selfstab: tau must be in (0, 1], got %v", tau)
		}
		c.tau = tau
		return nil
	}
}

// WithSlottedRadio replaces the Bernoulli loss model with an explicit
// slotted-CSMA medium of the given slot count: collisions — and hence τ —
// become emergent instead of assumed.
func WithSlottedRadio(slots int) Option {
	return func(c *config) error {
		if slots < 1 {
			return fmt.Errorf("selfstab: need at least 1 slot, got %d", slots)
		}
		c.slots = slots
		return nil
	}
}

// WithDaemon sets the activation probability of the randomized daemon:
// each step, each node evaluates its guarded assignments with probability
// p (broadcast and reception always happen). 1 (default) is the
// synchronous daemon; lower values model slower, unsynchronized nodes —
// self-stabilization holds regardless.
func WithDaemon(p float64) Option {
	return func(c *config) error {
		if p <= 0 || p > 1 {
			return fmt.Errorf("selfstab: activation probability must be in (0, 1], got %v", p)
		}
		c.activation = p
		return nil
	}
}

// WithStableWindow sets how many consecutive unchanged steps Stabilize
// requires before declaring the network stable. The default is 5; lossy
// media (low WithTau, few WithSlottedRadio slots) and sparse daemons can
// produce accidental quiet stretches, so such experiments should raise
// the window to avoid declaring stability on a lull.
func WithStableWindow(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("selfstab: stable window must be >= 1, got %d", k)
		}
		c.stableWindow = k
		return nil
	}
}

// WithCacheTTL evicts neighbor-table entries not refreshed for ttl steps.
// Needed under mobility and churn; 0 (default) never evicts.
func WithCacheTTL(ttl int) Option {
	return func(c *config) error {
		if ttl < 0 {
			return fmt.Errorf("selfstab: negative ttl %d", ttl)
		}
		c.cacheTTL = ttl
		return nil
	}
}

// WithRowMajorIDs assigns identifiers increasing left-to-right and
// bottom-to-top — the paper's adversarial distribution for which
// identifier tie-breaking degenerates (Table 5). Default is a random
// permutation.
func WithRowMajorIDs() Option {
	return func(c *config) error {
		c.rowMajor = true
		return nil
	}
}

// WithTiles controls spatial tiling of the step engine: the deployment
// region is partitioned into k rectangular tiles, each owning its nodes
// and its shard of the frontier worklist, and the step's phases run
// tile-parallel with halo (boundary) exchange at the phase barriers. The
// execution is bit-identical at every tile count — tiling is purely a
// performance knob. k = 1 disables tiling; the default (auto) picks
// min(GOMAXPROCS, N/2048) tiles so small worlds and single-core hosts
// stay on the flat path. Tiling engages only where frontier stepping
// does (lossless medium, synchronous daemon); otherwise it sits idle.
func WithTiles(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("selfstab: tile count must be >= 1, got %d", k)
		}
		c.tiles = k
		return nil
	}
}

// WithIDs supplies explicit unique node identifiers (overrides
// WithRowMajorIDs). Length must match the node count.
func WithIDs(ids []int64) Option {
	return func(c *config) error {
		c.idsCustom = append([]int64(nil), ids...)
		return nil
	}
}

// Network is a simulated multihop wireless network running the clustering
// protocol stack.
type Network struct {
	cfg    config
	region geom.Rect
	pts    []geom.Point
	ids    []int64
	id2idx map[int64]int // identifier → dense index
	g      *topology.Graph
	grid   *topology.GridIndex // persistent unit-disk index for SetPositions
	engine *runtime.Engine
	src    *rng.Source

	// Cached routing tables with epoch invalidation: the hierarchical
	// table is rebuilt only when the engine's epoch moved (a state-changing
	// step, fault injection, or a topology swap), the flat table only when
	// the topology itself moved. Route, RoutingState and the traffic data
	// plane all share these.
	routeTab      *routing.Hierarchical //selfstab:cache
	routeTabEpoch uint64                //selfstab:cache
	flatTab       *routing.Flat         //selfstab:cache
	flatTabEpoch  uint64                //selfstab:cache
	topoEpoch     uint64                // bumped by SetPositions and edge-changing churn

	// Memoized flat BFS distance rows (the path-stretch baseline the
	// traffic plane queries per flow), keyed by source and valid for one
	// topology epoch: one BFS per source per topology change instead of
	// one per flow.
	distRows      map[int][]int //selfstab:cache
	distRowsEpoch uint64        //selfstab:cache

	// Post-step phases, driven by stepPhases in order: traffic moves
	// packets, then energy charges them. The attach flags track whether a
	// phase is currently running; the engines stay readable after detach.
	traffic   *traffic.Engine // attached data plane (nil until AttachTraffic)
	trafficOn bool
	energy    *energy.Engine // attached battery model (nil until AttachEnergy)
	energyOn  bool

	// flowIDs pins each attached flow's endpoint identifiers at attach
	// time: indices move under Compact, identifiers never do, so the
	// per-flow ledger stays addressable across compactions.
	flowIDs []flowEndpointIDs

	// probe is the attached instrumentation sink (nil when detached); it
	// fans out to the engine and any attached subsystems. Pure-observer
	// state, never journaled: a replay without it is bit-identical.
	probe obs.Probe

	nextID        int64       // next identifier handed to a node added at runtime
	churn         *churnState // attached churn schedule (nil until AttachChurn)
	churnAttached bool        // schedule currently driving the pre-step phase
	autoCompact   float64     // dead-slot fraction that triggers Compact (0: never)
	workers       int         // SetParallelism setting, replayed onto late-attached subsystems

	// Snapshot support: the construction blueprint and the journal of
	// every world mutation (see journal.go). Together with the step count
	// they are the whole checkpoint — WriteSnapshot serializes exactly
	// these, and ReadSnapshot replays them.
	bp          snapshot.Blueprint
	oplog       []snapshot.Op
	lastTraffic *TrafficConfig // config of the last AttachTraffic, for online flow spawning
}

// flowEndpointIDs is one attached flow's endpoints by identifier.
type flowEndpointIDs struct {
	src, dst int64
}

// NewNetwork deploys nodes at explicit positions in the unit square.
func NewNetwork(positions []Point, opts ...Option) (*Network, error) {
	if len(positions) == 0 {
		return nil, errors.New("selfstab: no positions")
	}
	cfg, err := apply(opts)
	if err != nil {
		return nil, err
	}
	return construct(snapshot.Deployment{Kind: snapshot.DeployExplicit, Points: toSnapshotPoints(positions)}, cfg)
}

// NewRandomNetwork deploys exactly n uniformly random nodes.
func NewRandomNetwork(n int, opts ...Option) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("selfstab: need at least one node, got %d", n)
	}
	cfg, err := apply(opts)
	if err != nil {
		return nil, err
	}
	return construct(snapshot.Deployment{Kind: snapshot.DeployRandom, N: n}, cfg)
}

// NewPoissonNetwork deploys a Poisson point process of the given intensity
// (expected nodes per unit area; the paper's evaluation uses 1000).
func NewPoissonNetwork(intensity float64, opts ...Option) (*Network, error) {
	if intensity <= 0 {
		return nil, fmt.Errorf("selfstab: intensity must be positive, got %v", intensity)
	}
	cfg, err := apply(opts)
	if err != nil {
		return nil, err
	}
	return construct(snapshot.Deployment{Kind: snapshot.DeployPoisson, Intensity: intensity}, cfg)
}

// NewHotspotNetwork deploys n nodes concentrated around k random hotspots
// (Gaussian spread as a fraction of the region extent) — the heterogeneous
// "disaster area" scenario from the paper's introduction, where responders
// cluster around incident sites and the density metric elects one head
// per site rather than splitting co-located groups.
func NewHotspotNetwork(n, k int, spread float64, opts ...Option) (*Network, error) {
	cfg, err := apply(opts)
	if err != nil {
		return nil, err
	}
	return construct(snapshot.Deployment{Kind: snapshot.DeployHotspot, N: n, Hotspots: k, Spread: spread}, cfg)
}

// NewGridNetwork deploys a rows x cols lattice (the paper's grid scenario;
// combine with WithRowMajorIDs to reproduce the adversarial Table 5 case).
func NewGridNetwork(rows, cols int, opts ...Option) (*Network, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("selfstab: invalid grid %dx%d", rows, cols)
	}
	cfg, err := apply(opts)
	if err != nil {
		return nil, err
	}
	return construct(snapshot.Deployment{Kind: snapshot.DeployGrid, Rows: rows, Cols: cols}, cfg)
}

func apply(opts []Option) (config, error) {
	cfg := defaults()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// construct is the single construction path, shared by the public
// constructors and snapshot restore. It realizes the deployment from the
// descriptor, consuming the master seed's split streams in a fixed order,
// so rebuilding from a snapshot blueprint lands on exactly the world the
// original constructor produced — including every per-node rng stream.
func construct(dep snapshot.Deployment, cfg config) (*Network, error) {
	src := rng.New(cfg.seed)
	var pts []geom.Point
	switch dep.Kind {
	case snapshot.DeployExplicit:
		region := geom.UnitSquare()
		pts = make([]geom.Point, len(dep.Points))
		for i, p := range dep.Points {
			pts[i] = geom.Point{X: p.X, Y: p.Y}
			if !region.Contains(pts[i]) {
				return nil, fmt.Errorf("selfstab: position %d (%v, %v) outside the unit square", i, p.X, p.Y)
			}
		}
	case snapshot.DeployRandom:
		if dep.N < 1 {
			return nil, fmt.Errorf("selfstab: need at least one node, got %d", dep.N)
		}
		pts = deploy.Uniform(dep.N, geom.UnitSquare(), deploy.IDSequential, src.Split("deploy")).Points
	case snapshot.DeployPoisson:
		if dep.Intensity <= 0 {
			return nil, fmt.Errorf("selfstab: intensity must be positive, got %v", dep.Intensity)
		}
		d := deploy.Poisson(dep.Intensity, geom.UnitSquare(), deploy.IDSequential, src.Split("deploy"))
		for d.N() == 0 {
			d = deploy.Poisson(dep.Intensity, geom.UnitSquare(), deploy.IDSequential, src.Split("deploy-retry"))
		}
		pts = d.Points
	case snapshot.DeployHotspot:
		d, err := deploy.Hotspots(dep.N, dep.Hotspots, dep.Spread, geom.UnitSquare(), deploy.IDSequential, src.Split("deploy"))
		if err != nil {
			return nil, err
		}
		pts = d.Points
	case snapshot.DeployGrid:
		if dep.Rows < 1 || dep.Cols < 1 {
			return nil, fmt.Errorf("selfstab: invalid grid %dx%d", dep.Rows, dep.Cols)
		}
		pts = deploy.Grid(dep.Rows, dep.Cols, geom.UnitSquare(), deploy.IDSequential, src.Split("deploy")).Points
	default:
		return nil, fmt.Errorf("selfstab: unknown deployment kind %q", dep.Kind)
	}
	n, err := buildWith(cfg, pts, src)
	if err != nil {
		return nil, err
	}
	if dep.Points != nil {
		dep.Points = append([]snapshot.Point(nil), dep.Points...)
	}
	n.bp = snapshot.Blueprint{Deploy: dep, Options: optionsFromConfig(cfg)}
	return n, nil
}

// optionsFromConfig records the resolved construction options for the
// snapshot blueprint; configFromOptions inverts it on restore. The pair
// must stay exact — any option that changes the trajectory and escapes
// this round trip breaks replay.
func optionsFromConfig(c config) snapshot.Options {
	return snapshot.Options{
		Seed: c.seed, Range: c.radioRng, DAG: c.useDag, Gamma: c.gamma,
		Sticky: c.sticky, Fusion: c.fusion, Tau: c.tau, Slots: c.slots,
		CacheTTL: c.cacheTTL, Activation: c.activation, RowMajorIDs: c.rowMajor,
		IDs: c.idsCustom, StableWindow: c.stableWindow, Tiles: c.tiles,
	}
}

func configFromOptions(o snapshot.Options) config {
	return config{
		seed: o.Seed, radioRng: o.Range, useDag: o.DAG, gamma: o.Gamma,
		sticky: o.Sticky, fusion: o.Fusion, tau: o.Tau, slots: o.Slots,
		cacheTTL: o.CacheTTL, activation: o.Activation, rowMajor: o.RowMajorIDs,
		idsCustom: o.IDs, stableWindow: o.StableWindow, tiles: o.Tiles,
	}
}

func buildWith(cfg config, pts []geom.Point, src *rng.Source) (*Network, error) {
	n := &Network{
		cfg:    cfg,
		region: geom.UnitSquare(),
		pts:    append([]geom.Point(nil), pts...),
		src:    src,
	}
	if err := n.assignIDs(); err != nil {
		return nil, err
	}
	n.id2idx = make(map[int64]int, len(n.ids))
	for i, id := range n.ids {
		n.id2idx[id] = i
	}
	// The unit-disk index is anchored on the deployment region (not the
	// initial point spread) and persists for the Network's lifetime, so
	// SetPositions can repair the topology incrementally wherever the
	// nodes later roam.
	n.grid = topology.NewGridIndexInRegion(n.pts, cfg.radioRng, n.region)
	n.g = n.grid.Graph()

	proto := runtime.Protocol{
		Order:          cluster.OrderBasic,
		Fusion:         cfg.fusion,
		CacheTTL:       cfg.cacheTTL,
		ActivationProb: cfg.activation,
	}
	if cfg.sticky {
		proto.Order = cluster.OrderSticky
	}
	if cfg.useDag {
		proto.UseDag = true
		proto.Gamma = cfg.gamma
		if proto.Gamma == 0 {
			d := int64(n.g.MaxDegree())
			proto.Gamma = d * d
			if proto.Gamma <= d {
				proto.Gamma = d + 1
			}
		}
	}
	medium, err := n.makeMedium()
	if err != nil {
		return nil, err
	}
	engine, err := runtime.New(n.g, n.ids, proto, medium, src.Split("engine"))
	if err != nil {
		return nil, err
	}
	n.engine = engine
	engine.SetConvergenceWindow(max(cfg.stableWindow, cfg.cacheTTL+2))
	// Feed incremental topology deltas straight into the frontier: every
	// node whose radio adjacency changes under mobility or churn is
	// re-examined on the next step, and only those (see SetPositions).
	n.grid.SetOnAdjacencyChange(engine.Activate)
	// Spatial tiling: shard the frontier by region tile (WithTiles; the
	// auto default only engages on multicore hosts with enough nodes to
	// amortize the per-tile barriers). Ownership follows positions, so the
	// grid's move hook keeps the assignment current under mobility.
	tiles := cfg.tiles
	if tiles == 0 {
		tiles = goruntime.GOMAXPROCS(0)
		if maxT := len(n.pts) / 2048; tiles > maxT {
			tiles = maxT
		}
		if tiles < 1 {
			tiles = 1
		}
	}
	if tiles > 1 {
		tiling := topology.NewTiling(n.region, tiles)
		if err := engine.SetTiles(tiling.Tiles(), func(i int) int {
			return tiling.TileOf(n.grid.Positions()[i])
		}); err != nil {
			return nil, err
		}
		n.grid.SetOnMove(engine.Retile)
	}
	for _, id := range n.ids {
		if id >= n.nextID {
			n.nextID = id + 1
		}
	}
	return n, nil
}

func (n *Network) assignIDs() error {
	count := len(n.pts)
	switch {
	case n.cfg.idsCustom != nil:
		if len(n.cfg.idsCustom) != count {
			return fmt.Errorf("selfstab: %d ids for %d nodes", len(n.cfg.idsCustom), count)
		}
		seen := make(map[int64]bool, count)
		for _, id := range n.cfg.idsCustom {
			if seen[id] {
				return fmt.Errorf("selfstab: duplicate id %d", id)
			}
			seen[id] = true
		}
		n.ids = n.cfg.idsCustom
	case n.cfg.rowMajor:
		n.ids = rowMajorIDs(n.pts)
	default:
		perm := n.src.Split("ids").Perm(count)
		n.ids = make([]int64, count)
		for i, p := range perm {
			n.ids[i] = int64(p)
		}
	}
	return nil
}

// rowMajorIDs numbers nodes left-to-right, bottom-to-top (the adversarial
// spatially-correlated assignment of Table 5).
func rowMajorIDs(pts []geom.Point) []int64 {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return pa.X < pb.X
	})
	ids := make([]int64, len(pts))
	for rank, idx := range order {
		ids[idx] = int64(rank)
	}
	return ids
}

func (n *Network) makeMedium() (radio.Medium, error) {
	switch {
	case n.cfg.slots > 0:
		return radio.NewSlotted(n.cfg.slots, n.src.Split("radio"))
	case n.cfg.tau < 1:
		return radio.NewBernoulli(n.cfg.tau, n.src.Split("radio"))
	default:
		return radio.Perfect{}, nil
	}
}
