package selfstab

import (
	"strings"
	"testing"
)

func TestNewRandomNetwork(t *testing.T) {
	net, err := NewRandomNetwork(100, WithSeed(1), WithRange(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 100 {
		t.Errorf("N = %d", net.N())
	}
	if net.Range() != 0.15 {
		t.Errorf("Range = %v", net.Range())
	}
	if len(net.IDs()) != 100 || len(net.Positions()) != 100 {
		t.Error("accessor lengths wrong")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewRandomNetwork(0); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := NewPoissonNetwork(-5); err == nil {
		t.Error("negative intensity accepted")
	}
	if _, err := NewGridNetwork(0, 5); err == nil {
		t.Error("0-row grid accepted")
	}
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty positions accepted")
	}
	if _, err := NewNetwork([]Point{{X: 2, Y: 0}}); err == nil {
		t.Error("out-of-square position accepted")
	}
}

func TestOptionValidation(t *testing.T) {
	pts := []Point{{X: 0.5, Y: 0.5}}
	bad := []Option{
		WithRange(0),
		WithRange(1.5),
		WithTau(0),
		WithTau(2),
		WithSlottedRadio(0),
		WithCacheTTL(-1),
		WithDAG(-1),
		WithStableWindow(0),
		WithStableWindow(-3),
	}
	for i, opt := range bad {
		if _, err := NewNetwork(pts, opt); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
	if _, err := NewNetwork(pts, WithIDs([]int64{1, 2})); err == nil {
		t.Error("id length mismatch accepted")
	}
	if _, err := NewNetwork([]Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, WithIDs([]int64{7, 7})); err == nil {
		t.Error("duplicate ids accepted")
	}
}

// TestWithStableWindow: a wider window cannot report an earlier
// stabilization step than a narrow one on the same instance, and both must
// reach the same verified fixpoint.
func TestWithStableWindow(t *testing.T) {
	stabAt := func(window int) int {
		net, err := NewRandomNetwork(80, WithSeed(9), WithRange(0.15), WithStableWindow(window))
		if err != nil {
			t.Fatal(err)
		}
		at, err := net.Stabilize(500)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Verify(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	narrow := stabAt(1)
	wide := stabAt(20)
	if wide < narrow {
		t.Errorf("window 20 reported stabilization at %d, before window 1's %d", wide, narrow)
	}
}

func TestStabilizeAndClusters(t *testing.T) {
	net, err := NewRandomNetwork(120, WithSeed(2), WithRange(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	clusters := net.Clusters()
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	total := 0
	for _, c := range clusters {
		total += len(c.Members)
		found := false
		for _, m := range c.Members {
			if m == c.HeadID {
				found = true
			}
		}
		if !found {
			t.Errorf("cluster %d does not contain its head", c.HeadID)
		}
	}
	if total != net.N() {
		t.Errorf("clusters cover %d of %d nodes", total, net.N())
	}
	if err := net.Verify(); err != nil {
		t.Errorf("verify after stabilize: %v", err)
	}
}

func TestVerifyDetectsUnstabilized(t *testing.T) {
	net, err := NewRandomNetwork(120, WithSeed(3), WithRange(0.15))
	if err != nil {
		t.Fatal(err)
	}
	// Cold boot, zero steps: densities are all zero, which cannot match
	// Definition 1 on a connected random graph.
	if err := net.Verify(); err == nil {
		t.Error("verify passed on an unstabilized network")
	}
}

func TestSelfHealing(t *testing.T) {
	net, err := NewRandomNetwork(100, WithSeed(4), WithRange(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	before := net.Clusters()
	net.InjectFaults(1.0)
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatalf("network did not heal: %v", err)
	}
	after := net.Clusters()
	if len(before) != len(after) {
		t.Errorf("cluster count changed across healing: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i].HeadID != after[i].HeadID {
			t.Errorf("cluster %d head changed: %d -> %d", i, before[i].HeadID, after[i].HeadID)
		}
	}
}

func TestInjectFaultsNoop(t *testing.T) {
	net, err := NewRandomNetwork(10, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(200); err != nil {
		t.Fatal(err)
	}
	net.InjectFaults(0) // must be a no-op
	if err := net.Verify(); err != nil {
		t.Errorf("zero-fraction fault injection changed state: %v", err)
	}
}

func TestWithDAGNetwork(t *testing.T) {
	net, err := NewGridNetwork(16, 16, WithSeed(6), WithRange(0.08), WithRowMajorIDs(), WithDAG(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(1000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	// The DAG must rescue the adversarial grid from the single-cluster
	// collapse.
	if got := net.Stats().Clusters; got < 4 {
		t.Errorf("grid with DAG produced only %d clusters", got)
	}
}

func TestAdversarialGridWithoutDAGCollapses(t *testing.T) {
	net, err := NewGridNetwork(16, 16, WithSeed(7), WithRange(0.08), WithRowMajorIDs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(5000); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().Clusters; got > 2 {
		t.Errorf("adversarial grid without DAG should collapse, got %d clusters", got)
	}
}

func TestLossyNetworkStabilizes(t *testing.T) {
	net, err := NewRandomNetwork(60, WithSeed(8), WithRange(0.2), WithTau(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Error(err)
	}
}

func TestSlottedNetworkStabilizes(t *testing.T) {
	net, err := NewRandomNetwork(50, WithSeed(9), WithRange(0.2), WithSlottedRadio(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Error(err)
	}
}

func TestMobilityViaSetPositions(t *testing.T) {
	net, err := NewRandomNetwork(60, WithSeed(10), WithRange(0.2), WithCacheTTL(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	// Drift every node slightly and re-stabilize.
	pts := net.Positions()
	for i := range pts {
		pts[i].X = clamp01(pts[i].X + 0.01)
		pts[i].Y = clamp01(pts[i].Y - 0.01)
	}
	if err := net.SetPositions(pts); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(500); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestSetPositionsValidation(t *testing.T) {
	net, err := NewRandomNetwork(10, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetPositions([]Point{{X: 0.5, Y: 0.5}}); err == nil {
		t.Error("length mismatch accepted")
	}
	pts := net.Positions()
	pts[0].X = 5
	if err := net.SetPositions(pts); err == nil {
		t.Error("out-of-region accepted")
	}
}

func TestStateAndNeighbors(t *testing.T) {
	net, err := NewRandomNetwork(30, WithSeed(12), WithRange(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(300); err != nil {
		t.Fatal(err)
	}
	st, err := net.State(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.IsHead != (st.HeadID == st.ID) {
		t.Error("IsHead inconsistent")
	}
	if _, err := net.State(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := net.State(999); err == nil {
		t.Error("out-of-range index accepted")
	}
	nbrs, err := net.Neighbors(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Error("neighbors not sorted")
		}
	}
	if _, err := net.Neighbors(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestRendering(t *testing.T) {
	net, err := NewRandomNetwork(40, WithSeed(13), WithRange(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(300); err != nil {
		t.Fatal(err)
	}
	svg, err := net.RenderSVG(300)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("svg malformed")
	}
	txt, err := net.RenderASCII(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(txt), "\n")) != 10 {
		t.Error("ascii shape wrong")
	}
}

func TestRenderingBeforeStabilization(t *testing.T) {
	// Rendering a cold network must not fail even though head ids are
	// self-referential and densities are zero.
	net, err := NewRandomNetwork(20, WithSeed(14))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RenderSVG(100); err != nil {
		t.Errorf("cold render: %v", err)
	}
}

func TestDeterministicSameSeed(t *testing.T) {
	build := func() []Cluster {
		net, err := NewRandomNetwork(80, WithSeed(15), WithRange(0.15), WithDAG(0))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Stabilize(500); err != nil {
			t.Fatal(err)
		}
		return net.Clusters()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].HeadID != b[i].HeadID || len(a[i].Members) != len(b[i].Members) {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestStickyAndFusionOptionsWork(t *testing.T) {
	net, err := NewRandomNetwork(80, WithSeed(16), WithRange(0.12),
		WithStickyHeads(), WithFusion())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(1000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Error(err)
	}
	// Fusion invariant: any two heads at least 3 hops apart — Verify
	// already checks via CheckInvariants; sanity check head count > 0.
	if net.Stats().Clusters < 1 {
		t.Error("no clusters")
	}
}

func TestGridNetworkSingleCell(t *testing.T) {
	net, err := NewGridNetwork(1, 1, WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(50); err != nil {
		t.Fatal(err)
	}
	cl := net.Clusters()
	if len(cl) != 1 || len(cl[0].Members) != 1 {
		t.Errorf("singleton network clusters: %+v", cl)
	}
}

func TestPoissonNetwork(t *testing.T) {
	net, err := NewPoissonNetwork(200, WithSeed(18), WithRange(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if net.N() < 100 || net.N() > 320 {
		t.Errorf("Poisson(200) produced %d nodes", net.N())
	}
}

func TestHotspotNetworkOneHeadPerSite(t *testing.T) {
	// Well-separated tight hotspots: the density metric should elect few
	// heads — on the order of the number of sites, NOT one per arbitrary
	// id neighborhood.
	net, err := NewHotspotNetwork(200, 4, 0.02, WithSeed(50), WithRange(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stabilize(1000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	got := net.Stats().Clusters
	if got > 12 {
		t.Errorf("hotspot deployment produced %d clusters for 4 sites", got)
	}
}

func TestHotspotNetworkValidation(t *testing.T) {
	if _, err := NewHotspotNetwork(10, 0, 0.05); err == nil {
		t.Error("zero hotspots accepted")
	}
	if _, err := NewHotspotNetwork(10, 2, -1); err == nil {
		t.Error("negative spread accepted")
	}
}
