package selfstab

import "testing"

// BenchmarkChurnStep1000 is the churn headline: one Δ(τ) step of a
// 1000-node network under ~1%-of-the-population-per-step lifecycle churn
// (crashes plus sleep/wake duty-cycling, the steady-state mix whose
// pre-step phase must not allocate — see TestChurnPreStepAllocationFree)
// while the protocol continuously re-stabilizes around the disruptions.
// Compare against BenchmarkStep1000 for the cost of churn itself.
func BenchmarkChurnStep1000(b *testing.B) {
	net, err := NewRandomNetwork(1000,
		WithSeed(1),
		WithRange(0.1),
		WithCacheTTL(8),
		WithStableWindow(10),
	)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.Stabilize(5000); err != nil {
		b.Fatal(err)
	}
	if err := net.AttachChurn(ChurnConfig{
		CrashRate:  5,
		SleepRate:  2.5,
		SleepSteps: 20, // ~2.5 wakes/step at steady state: ~10 ops/step total
	}); err != nil {
		b.Fatal(err)
	}
	// Warm up: grow all reusable scratch and reach the steady churn mix.
	if err := net.Run(60); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	alive, sleeping, dead := net.Population()
	b.ReportMetric(float64(alive), "alive")
	_ = sleeping
	_ = dead
}
