package selfstab

import (
	"reflect"
	"testing"
)

// compactObservables gathers every identifier-keyed ledger a compaction
// must leave untouched.
type compactObservables struct {
	clusters []Cluster
	stats    Stats
	conv     ConvergenceStats
	traffic  TrafficStats
	energy   EnergyStats
	alive    int
	sleeping int
}

func observe(t *testing.T, net *Network) compactObservables {
	t.Helper()
	ts, err := net.TrafficStats()
	if err != nil {
		t.Fatal(err)
	}
	es, err := net.EnergyStats()
	if err != nil {
		t.Fatal(err)
	}
	o := compactObservables{
		clusters: net.Clusters(),
		stats:    net.Stats(),
		conv:     net.ConvergenceStats(),
		traffic:  ts,
		energy:   es,
	}
	o.alive, o.sleeping, _ = net.Population()
	return o
}

func compareObservables(t *testing.T, label string, a, b compactObservables) {
	t.Helper()
	if !reflect.DeepEqual(a.clusters, b.clusters) {
		t.Fatalf("%s: clusterings diverged", label)
	}
	if a.stats != b.stats {
		t.Fatalf("%s: stats diverged:\n%+v\n%+v", label, a.stats, b.stats)
	}
	if !reflect.DeepEqual(a.conv, b.conv) {
		t.Fatalf("%s: convergence ledgers diverged:\n%+v\n%+v", label, a.conv, b.conv)
	}
	if !reflect.DeepEqual(a.traffic, b.traffic) {
		t.Fatalf("%s: traffic ledgers diverged:\n%+v\n%+v", label, a.traffic, b.traffic)
	}
	if !reflect.DeepEqual(a.energy, b.energy) {
		t.Fatalf("%s: energy ledgers diverged:\n%+v\n%+v", label, a.energy, b.energy)
	}
	if a.alive != b.alive || a.sleeping != b.sleeping {
		t.Fatalf("%s: operating populations diverged: %d/%d vs %d/%d",
			label, a.alive, a.sleeping, b.alive, b.sleeping)
	}
}

// compactNet is a churn + traffic + energy network for the compaction
// oracles: enough departures that dead slots actually accumulate.
func compactNet(t *testing.T, seed int64) *Network {
	t.Helper()
	net := churnNet(t, 220, seed)
	if err := net.AttachTraffic(TrafficConfig{
		QueueCap: 8,
		Flows:    mixedWorkload(net, 12),
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachEnergy(EnergyConfig{Capacity: 5}); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachChurn(ChurnConfig{
		ArrivalRate:   0.3,
		DepartureRate: 0.3,
		CrashRate:     0.1,
		SleepRate:     0.1,
		SleepSteps:    6,
	}); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestCompactStatsInvariant: calling Compact between steps changes no
// identifier-keyed observable — Stats, TrafficStats, EnergyStats,
// ConvergenceStats, Clusters and the operating population all read
// identically before and after, while N() shrinks by the dead count.
func TestCompactStatsInvariant(t *testing.T) {
	net := compactNet(t, 515)
	if err := net.Run(140); err != nil {
		t.Fatal(err)
	}
	_, _, dead := net.Population()
	if dead < 5 {
		t.Fatalf("churn produced only %d dead slots; test needs more", dead)
	}
	before := observe(t, net)
	nBefore := net.N()
	removed, err := net.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed != dead {
		t.Fatalf("Compact removed %d slots, want %d", removed, dead)
	}
	if net.N() != nBefore-dead {
		t.Fatalf("N() = %d after compacting %d of %d", net.N(), dead, nBefore)
	}
	compareObservables(t, "across Compact", before, observe(t, net))
	if _, _, d := net.Population(); d != 0 {
		t.Fatalf("%d dead slots survived Compact", d)
	}
	// A second Compact with nothing to reclaim is a no-op.
	if removed, err := net.Compact(); err != nil || removed != 0 {
		t.Fatalf("idle Compact: removed %d, err %v", removed, err)
	}
}

// TestCompactTwinEquivalence is the strong compaction oracle: two
// identical churn + traffic + energy runs, one compacting repeatedly
// mid-run, must stay bit-identical in every identifier-keyed observable
// for the rest of the execution — compaction may renumber indices but
// must never alter what the simulation computes.
func TestCompactTwinEquivalence(t *testing.T) {
	plain := compactNet(t, 616)
	compacted := compactNet(t, 616)
	for seg := 0; seg < 4; seg++ {
		if err := plain.Run(45); err != nil {
			t.Fatal(err)
		}
		if err := compacted.Run(45); err != nil {
			t.Fatal(err)
		}
		if _, err := compacted.Compact(); err != nil {
			t.Fatal(err)
		}
		compareObservables(t, "mid-run segment", observe(t, plain), observe(t, compacted))
	}
	// Let both settle and check the final clustering is legitimate.
	plain.DetachChurn()
	compacted.DetachChurn()
	plain.DetachEnergy()
	compacted.DetachEnergy()
	if _, err := plain.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	if _, err := compacted.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	compareObservables(t, "final", observe(t, plain), observe(t, compacted))
	if err := compacted.Verify(); err != nil {
		t.Fatalf("compacted twin failed verification: %v", err)
	}
}

// TestAutoCompactBoundsMemory: under sustained balanced add/remove churn
// with an auto-compaction threshold, the dense-array length tracks the
// operating population instead of cumulative arrivals.
func TestAutoCompactBoundsMemory(t *testing.T) {
	net := churnNet(t, 150, 717)
	if err := net.SetAutoCompact(0.25); err != nil {
		t.Fatal(err)
	}
	if err := net.AttachChurn(ChurnConfig{
		ArrivalRate:   1.0,
		DepartureRate: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	const steps = 800
	if err := net.Run(steps); err != nil {
		t.Fatal(err)
	}
	alive, sleeping, dead := net.Population()
	operating := alive + sleeping
	// ~steps × rate arrivals passed through; without recycling N() would
	// sit near 150 + 800. With a 25% threshold it must stay within
	// operating/(1-0.25) plus one step's worth of churn slack.
	bound := operating*4/3 + 16
	if net.N() > bound {
		t.Fatalf("N() = %d (operating %d, dead %d): dense arrays not bounded by the operating population",
			net.N(), operating, dead)
	}
	if net.N() >= 150+steps/2 {
		t.Fatalf("N() = %d tracks cumulative arrivals", net.N())
	}
	// The engine must still be healthy: detach churn, settle, verify.
	net.DetachChurn()
	if _, err := net.Stabilize(3000); err != nil {
		t.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSetAutoCompactValidation rejects out-of-range thresholds.
func TestSetAutoCompactValidation(t *testing.T) {
	net := churnNet(t, 30, 818)
	if err := net.SetAutoCompact(-0.1); err == nil {
		t.Error("negative threshold accepted")
	}
	if err := net.SetAutoCompact(1.5); err == nil {
		t.Error("threshold above 1 accepted")
	}
	if err := net.SetAutoCompact(0); err != nil {
		t.Error(err)
	}
}

// TestNetworkSparseMatchesDense: the public-layer twin of the runtime
// equivalence oracle — a full churn + traffic + energy run must produce
// identical ledgers with frontier stepping on and off.
func TestNetworkSparseMatchesDense(t *testing.T) {
	build := func(sparse bool, workers int) compactObservables {
		net := compactNet(t, 919)
		net.SetParallelism(workers)
		if err := net.SetSparseStepping(sparse); err != nil {
			t.Fatal(err)
		}
		if !sparse && net.SparseStepping() {
			t.Fatal("dense twin still sparse")
		}
		if err := net.Run(130); err != nil {
			t.Fatal(err)
		}
		net.DetachChurn()
		if _, err := net.Stabilize(3000); err != nil {
			t.Fatal(err)
		}
		return observe(t, net)
	}
	dense := build(false, 1)
	for _, workers := range []int{1, 4} {
		compareObservables(t, "sparse vs dense", dense, build(true, workers))
	}
}
